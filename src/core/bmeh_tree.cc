#include "src/core/bmeh_tree.h"

#include <sstream>

#include "src/common/bit_util.h"
#include "src/hashdir/split_util.h"

namespace bmeh {

using hashdir::DirNode;
using hashdir::Entry;
using hashdir::IndexTuple;
using hashdir::PathStep;
using hashdir::Ref;

namespace {
/// Backstop against non-terminating insert loops; real insertions need at
/// most O(phi * l^2) structural changes (Theorem 3).
constexpr int kMaxInsertRestarts = 100000;
}  // namespace

BmehTree::BmehTree(const KeySchema& schema, const TreeOptions& options)
    : schema_(schema),
      options_(options),
      nodes_(schema.dims()),
      pages_(options.page_capacity) {
  BMEH_CHECK(options.page_capacity >= 1);
  for (int j = 0; j < schema_.dims(); ++j) {
    BMEH_CHECK(options_.xi[j] >= 1 && options_.xi[j] <= schema_.width(j))
        << "xi out of range for dim " << j;
  }
  root_id_ = nodes_.Create();
  published_root_.store(root_id_, std::memory_order_relaxed);
}

void BmehTree::EnableConcurrentReads(epoch::EpochManager* mgr) {
  BMEH_CHECK(mgr != nullptr);
  BMEH_CHECK(epoch_ == nullptr) << "concurrent reads already enabled";
  // Snapshot the current (quiescent) structure into the read plane.
  published_root_.store(root_id_, std::memory_order_relaxed);
  published_levels_.store(static_cast<uint64_t>(levels_),
                          std::memory_order_relaxed);
  published_records_.store(records_, std::memory_order_relaxed);
  epoch_ = mgr;
}

void BmehTree::CommitMutation() {
  const bool dirty =
      nodes_.ScopeDirty() || pages_.ScopeDirty() ||
      root_id_ != published_root_.load(std::memory_order_relaxed) ||
      static_cast<uint64_t>(levels_) !=
          published_levels_.load(std::memory_order_relaxed) ||
      records_ != published_records_.load(std::memory_order_relaxed);
  if (!dirty) {
    // Read-only outcome (duplicate insert, missing delete, ...): nothing
    // to publish, and no sequence bump to disturb in-flight readers.
    nodes_.CancelScope();
    pages_.CancelScope();
    return;
  }
  pub_seq_.fetch_add(1, std::memory_order_acq_rel);  // Odd: commit open.
  if (commit_hook_) commit_hook_();
  std::vector<hashdir::RetiredObject> retired;
  // Pages first: a reader that sees a new node must find its pages.
  pages_.PublishScope(&retired);
  if (mid_publish_hook_) mid_publish_hook_();
  nodes_.PublishScope(&retired);
  published_root_.store(root_id_, std::memory_order_release);
  published_levels_.store(static_cast<uint64_t>(levels_),
                          std::memory_order_relaxed);
  published_records_.store(records_, std::memory_order_relaxed);
  pub_seq_.fetch_add(1, std::memory_order_release);  // Even: commit closed.
  // Retire only after the slots no longer reach the originals.
  for (const hashdir::RetiredObject& r : retired) {
    epoch_->Retire(r.obj, r.deleter);
  }
  epoch_->ReclaimSome();
}

Status BmehTree::Insert(const PseudoKey& key, uint64_t payload) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  MutationScope scope(this);
  return InsertUnscoped(key, payload);
}

Status BmehTree::InsertUnscoped(const PseudoKey& key, uint64_t payload) {
  // Wall time this insertion spent making room (the whole split cascade
  // across restarts); recorded as one histogram sample on success.
  uint64_t split_ns = 0;
  for (int attempt = 0; attempt < kMaxInsertRestarts; ++attempt) {
    BMEH_ASSIGN_OR_RETURN(std::vector<PathStep> path,
                          hashdir::DescendToLeaf(schema_, nodes_, root_id_,
                                                 key, &io_));
    const PathStep& leaf = path.back();
    // Read the entry through the const view: a mutable Get would clone the
    // node into the copy-on-write shadow even when nothing changes.
    const Entry e = std::as_const(nodes_).Get(leaf.node_id)->at(leaf.tuple);
    if (e.ref.is_nil()) {
      // Paper's P = NIL branch: a fresh page serves the whole region.
      const uint32_t pid = pages_.Create();
      nodes_.Get(leaf.node_id)->SetGroupRef(leaf.tuple, Ref::Page(pid));
      io_.CountDirWrite();
      BMEH_CHECK_OK(pages_.Get(pid)->Insert({key, payload}));
      io_.CountDataWrite();
      ++records_;
      if (split_ns != 0) split_latency_->Record(split_ns);
      return Status::OK();
    }
    BMEH_DCHECK(e.ref.is_page());
    if (quarantined_.count(e.ref.id) != 0) {
      // The bucket's records were lost to corruption; inserting here could
      // resurrect a key that is already (invisibly) present.
      return Status::DataLoss("bucket for " + key.ToString() +
                              " was lost to corruption");
    }
    const DataPage* page = std::as_const(pages_).Get(e.ref.id);
    io_.CountDataRead();
    if (page->Contains(key)) {
      return Status::AlreadyExists("key " + key.ToString() +
                                   " already present");
    }
    if (!page->full()) {
      BMEH_CHECK_OK(pages_.Get(e.ref.id)->Insert({key, payload}));
      io_.CountDataWrite();
      ++records_;
      if (split_ns != 0) split_latency_->Record(split_ns);
      return Status::OK();
    }
    if (split_latency_ != nullptr) {
      const uint64_t t0 = obs::MonotonicNanos();
      BMEH_RETURN_NOT_OK(SplitLeafOnce(path));
      split_ns += obs::MonotonicNanos() - t0;
      if (split_ns == 0) split_ns = 1;  // clock too coarse; still a split
    } else {
      BMEH_RETURN_NOT_OK(SplitLeafOnce(path));
    }
  }
  return Status::CapacityError("insertion did not converge for " +
                               key.ToString());
}

Result<uint64_t> BmehTree::Search(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  BMEH_ASSIGN_OR_RETURN(std::vector<PathStep> path,
                        hashdir::DescendToLeaf(schema_, nodes_, root_id_, key,
                                               &io_));
  const PathStep& leaf = path.back();
  const Entry& e = nodes_.Get(leaf.node_id)->at(leaf.tuple);
  if (e.ref.is_nil()) {
    return Status::KeyError("key " + key.ToString() + " not found");
  }
  if (quarantined_.count(e.ref.id) != 0) {
    // "Not found" would be a silent wrong answer: the key may well have
    // been in the lost bucket.
    return Status::DataLoss("bucket for " + key.ToString() +
                            " was lost to corruption");
  }
  io_.CountDataRead();
  auto payload = pages_.Get(e.ref.id)->Lookup(key);
  if (!payload) {
    return Status::KeyError("key " + key.ToString() + " not found");
  }
  return *payload;
}

std::vector<BmehLevelStats> BmehTree::DescribeLevels() const {
  std::vector<BmehLevelStats> levels(levels_);
  // Breadth-first over the balanced tree.
  std::vector<uint32_t> frontier = {root_id_};
  for (int level = 0; level < levels_ && !frontier.empty(); ++level) {
    std::vector<uint32_t> next;
    for (uint32_t id : frontier) {
      const DirNode& node = *nodes_.Get(id);
      BmehLevelStats& s = levels[level];
      ++s.nodes;
      s.entries_used += node.entry_count();
      node.ForEachGroup([&](const IndexTuple&, const Entry& e) {
        ++s.groups;
        if (e.ref.is_nil()) ++s.nil_groups;
        if (e.ref.is_node()) next.push_back(e.ref.id);
      });
    }
    frontier = std::move(next);
  }
  return levels;
}

std::vector<uint64_t> BmehTree::PageFillHistogram() const {
  std::vector<uint64_t> hist(options_.page_capacity + 1, 0);
  pages_.ForEach([&](uint32_t, const DataPage& page) {
    ++hist[page.size()];
  });
  return hist;
}

void BmehTree::Scan(const std::function<void(const Record&)>& fn) {
  pages_.ForEach([&](uint32_t, const DataPage& page) {
    io_.CountDataRead();
    for (const Record& rec : page.records()) fn(rec);
  });
}

IndexStructureStats BmehTree::Stats() const {
  IndexStructureStats s;
  s.directory_nodes = nodes_.live_count();
  s.directory_entries =
      nodes_.live_count() * options_.node_block_entries(schema_.dims());
  uint64_t used = 0;
  nodes_.ForEach([&](uint32_t, const DirNode& n) { used += n.entry_count(); });
  s.directory_entries_used = used;
  s.directory_levels = levels_;
  s.data_pages = pages_.live_count();
  s.records = records_;
  return s;
}

std::string BmehTree::ToDot() const {
  std::ostringstream os;
  os << "digraph bmeh {\n  node [shape=record];\n";
  nodes_.ForEach([&](uint32_t id, const DirNode& node) {
    os << "  n" << id << " [label=\"N" << id << " H=(";
    for (int j = 0; j < schema_.dims(); ++j) {
      if (j) os << ",";
      os << node.depth(j);
    }
    os << ")\"];\n";
    node.ForEachGroup([&](const IndexTuple& rep, const Entry& e) {
      if (e.ref.is_nil()) return;
      std::string target = e.ref.is_node()
                               ? "n" + std::to_string(e.ref.id)
                               : "p" + std::to_string(e.ref.id);
      os << "  n" << id << " -> " << target << " [label=\"<";
      for (int j = 0; j < schema_.dims(); ++j) {
        if (j) os << ",";
        os << bit_util::IndexPrefix(rep[j], node.depth(j), e.h[j]);
      }
      os << ">\"];\n";
    });
  });
  pages_.ForEach([&](uint32_t id, const DataPage& page) {
    os << "  p" << id << " [shape=box,label=\"P" << id << " ("
       << page.size() << ")\"];\n";
  });
  os << "}\n";
  return os.str();
}

}  // namespace bmeh
