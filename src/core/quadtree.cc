#include "src/core/quadtree.h"

#include <algorithm>
#include <cmath>

#include "src/common/bit_util.h"

namespace bmeh {

namespace {

TreeOptions QuadtreeTreeOptions(const BalancedQuadtree::Options& o) {
  TreeOptions t;
  t.page_capacity = o.page_capacity;
  for (int j = 0; j < o.dims; ++j) t.xi[j] = 1;  // xi_j = 1: 2^d-way nodes
  return t;
}

}  // namespace

BalancedQuadtree::BalancedQuadtree(const Options& options)
    : options_(options),
      schema_(options.dims, options.bits_per_dim),
      tree_(schema_, QuadtreeTreeOptions(options)) {
  BMEH_CHECK(options.dims >= 1 && options.dims <= kMaxDims);
  BMEH_CHECK(options.bits_per_dim >= 1 && options.bits_per_dim <= 32);
}

uint32_t BalancedQuadtree::EncodeCoord(double v) const {
  if (v < 0.0) v = 0.0;
  if (v > 1.0) v = 1.0;
  const double scale =
      static_cast<double>(bit_util::Pow2(options_.bits_per_dim)) - 1.0;
  return static_cast<uint32_t>(v * scale);
}

double BalancedQuadtree::DecodeCoord(uint32_t code) const {
  const double scale =
      static_cast<double>(bit_util::Pow2(options_.bits_per_dim)) - 1.0;
  return static_cast<double>(code) / scale;
}

PseudoKey BalancedQuadtree::Encode(std::span<const double> point) const {
  BMEH_CHECK(static_cast<int>(point.size()) == options_.dims);
  std::array<uint32_t, kMaxDims> comps{};
  for (int j = 0; j < options_.dims; ++j) comps[j] = EncodeCoord(point[j]);
  return PseudoKey(std::span<const uint32_t>(comps.data(), options_.dims));
}

Status BalancedQuadtree::Insert(std::span<const double> point,
                                uint64_t payload) {
  return tree_.Insert(Encode(point), payload);
}

Result<uint64_t> BalancedQuadtree::Search(std::span<const double> point) {
  return tree_.Search(Encode(point));
}

Status BalancedQuadtree::Delete(std::span<const double> point) {
  return tree_.Delete(Encode(point));
}

Status BalancedQuadtree::NearestNeighbors(std::span<const double> query,
                                          int k,
                                          std::vector<Neighbor>* out) {
  BMEH_CHECK(static_cast<int>(query.size()) == options_.dims);
  if (k <= 0) return Status::Invalid("k must be positive");
  const uint64_t total = size();
  if (total == 0) return Status::OK();
  const int want = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(k), total));

  auto distance = [&](const QuadtreePoint& p) {
    double d2 = 0.0;
    for (int j = 0; j < options_.dims; ++j) {
      const double d = p.coords[j] - query[j];
      d2 += d * d;
    }
    return std::sqrt(d2);
  };

  // Expanding box: start at one leaf-cell width and double until the
  // want-th candidate's true distance fits inside the box half-width
  // (then nothing nearer can lie outside the box).
  double r = std::max(1e-6, std::pow(0.5, tree_.height()));
  for (;;) {
    std::vector<double> lo(options_.dims), hi(options_.dims);
    bool covers_all = true;
    for (int j = 0; j < options_.dims; ++j) {
      lo[j] = query[j] - r;
      hi[j] = query[j] + r;
      if (lo[j] > 0.0 || hi[j] < 1.0) covers_all = false;
    }
    std::vector<QuadtreePoint> candidates;
    BMEH_RETURN_NOT_OK(BoxSearch(lo, hi, &candidates));
    if (static_cast<int>(candidates.size()) >= want) {
      std::vector<Neighbor> ranked;
      ranked.reserve(candidates.size());
      for (const QuadtreePoint& p : candidates) {
        ranked.push_back({p, distance(p)});
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.distance < b.distance;
                });
      if (covers_all || ranked[want - 1].distance <= r) {
        ranked.resize(want);
        out->insert(out->end(), ranked.begin(), ranked.end());
        return Status::OK();
      }
    } else if (covers_all) {
      return Status::Corruption("NN box covered the space but missed keys");
    }
    r *= 2.0;
  }
}

Status BalancedQuadtree::BoxSearch(std::span<const double> lo,
                                   std::span<const double> hi,
                                   std::vector<QuadtreePoint>* out) {
  BMEH_CHECK(static_cast<int>(lo.size()) == options_.dims);
  BMEH_CHECK(static_cast<int>(hi.size()) == options_.dims);
  RangePredicate pred(schema_);
  for (int j = 0; j < options_.dims; ++j) {
    if (lo[j] > hi[j]) {
      return Status::Invalid("box lo > hi in dim " + std::to_string(j));
    }
    pred.Constrain(j, EncodeCoord(lo[j]), EncodeCoord(hi[j]));
  }
  std::vector<Record> records;
  BMEH_RETURN_NOT_OK(tree_.RangeSearch(pred, &records));
  for (const Record& rec : records) {
    QuadtreePoint p;
    for (int j = 0; j < options_.dims; ++j) {
      p.coords[j] = DecodeCoord(rec.key.component(j));
    }
    p.payload = rec.payload;
    out->push_back(p);
  }
  return Status::OK();
}

}  // namespace bmeh
