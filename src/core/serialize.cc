// Persistence for the BMEH-tree: the whole structure is serialized into a
// compact byte stream and stored across a chain of PageStore pages
// (each page: [next page id | payload length | payload]), written and read
// through a BufferPool.  Round-trips through both the in-memory store and
// the POSIX FilePageStore (see persistence tests).

#include <cstring>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/core/bmeh_tree.h"
#include "src/pagestore/buffer_pool.h"
#include "src/pagestore/undo_journal.h"

namespace bmeh {

using hashdir::DirNode;
using hashdir::Entry;
using hashdir::IndexTuple;
using hashdir::Ref;
using hashdir::RefKind;

namespace {

constexpr uint32_t kTreeMagic = 0x424d5431;  // "BMT1"

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 4);
    std::memcpy(buf_.data() + n, &v, 4);
  }
  void U64(uint64_t v) {
    size_t n = buf_.size();
    buf_.resize(n + 8);
    std::memcpy(buf_.data() + n, &v, 8);
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return data_[pos_++];
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated() const {
    return Status::Corruption("truncated BMEH tree image at offset " +
                              std::to_string(pos_));
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Writes `bytes` across a chain of store pages; returns the head page id.
///
/// All-or-nothing: the chain's worst-case page count is reserved before
/// the first allocation, so a full store refuses here with the store
/// untouched; and a mid-chain allocation or write failure rolls the
/// partial chain back (every allocated page freed, the reservation
/// released) instead of leaking half an image.
Result<PageId> WriteChain(PageStore* store, std::span<const uint8_t> bytes) {
  const size_t payload_cap = store->page_size() - 8;
  size_t n_pages = (bytes.size() + payload_cap - 1) / payload_cap;
  if (n_pages == 0) n_pages = 1;
  PageOpJournal journal(store);
  BMEH_RETURN_NOT_OK(journal.Reserve(n_pages));
  // Allocate pages first so each page can record its successor.
  std::vector<PageId> ids(n_pages);
  for (size_t i = 0; i < n_pages; ++i) {
    BMEH_ASSIGN_OR_RETURN(ids[i], journal.Allocate());
  }
  std::vector<uint8_t> page(store->page_size());
  size_t off = 0;
  for (size_t i = 0; i < n_pages; ++i) {
    std::fill(page.begin(), page.end(), 0);
    const uint32_t next =
        (i + 1 < n_pages) ? ids[i + 1] : kInvalidPageId;
    const uint32_t len = static_cast<uint32_t>(
        std::min(payload_cap, bytes.size() - off));
    std::memcpy(page.data(), &next, 4);
    std::memcpy(page.data() + 4, &len, 4);
    if (len > 0) std::memcpy(page.data() + 8, bytes.data() + off, len);
    BMEH_RETURN_NOT_OK(store->Write(ids[i], page));
    off += len;
  }
  journal.Commit();
  return ids[0];
}

/// Outcome of a tolerant chain read: the readable prefix plus how (and
/// whether) the chain ended early.
struct ChainPrefix {
  std::vector<uint8_t> bytes;
  std::vector<PageId> pages;  ///< Chain pages successfully read, in order.
  bool complete = true;       ///< Reached the kInvalidPageId terminator.
  bool data_loss = false;     ///< The cut was a verified-corrupt page.
};

/// Reads a chain written by WriteChain up to the first unreadable or
/// structurally invalid page; never fails, only stops early.
ChainPrefix ReadChainPrefix(PageStore* store, PageId head) {
  ChainPrefix out;
  std::vector<uint8_t> buf(store->page_size());
  PageId id = head;
  std::unordered_set<PageId> visited;
  while (id != kInvalidPageId) {
    if (!visited.insert(id).second) {
      out.complete = false;  // cycle: stale or corrupted link
      break;
    }
    const Status st = store->Read(id, buf);
    if (!st.ok()) {
      out.complete = false;
      out.data_loss = st.IsDataLoss();
      break;
    }
    uint32_t next, len;
    std::memcpy(&next, buf.data(), 4);
    std::memcpy(&len, buf.data() + 4, 4);
    if (len > static_cast<uint32_t>(store->page_size() - 8)) {
      out.complete = false;
      break;
    }
    out.pages.push_back(id);
    out.bytes.insert(out.bytes.end(), buf.data() + 8, buf.data() + 8 + len);
    id = next;
  }
  return out;
}

/// Reads a chain written by WriteChain (strict: any gap is an error).
Result<std::vector<uint8_t>> ReadChain(PageStore* store, PageId head) {
  BufferPool pool(store, /*capacity=*/8);
  std::vector<uint8_t> out;
  PageId id = head;
  std::unordered_set<PageId> visited;
  while (id != kInvalidPageId) {
    if (!visited.insert(id).second) {
      return Status::Corruption("page chain cycle at page " +
                                std::to_string(id));
    }
    BMEH_ASSIGN_OR_RETURN(PageHandle h, pool.Fetch(id));
    auto page = h.data();
    uint32_t next, len;
    std::memcpy(&next, page.data(), 4);
    std::memcpy(&len, page.data() + 4, 4);
    if (len > static_cast<uint32_t>(store->page_size() - 8)) {
      return Status::Corruption("page chain payload overflow");
    }
    out.insert(out.end(), page.data() + 8, page.data() + 8 + len);
    id = next;
  }
  return out;
}

}  // namespace

Status BmehTree::CollectImagePages(PageStore* store, PageId head,
                                   std::vector<PageId>* out) {
  PageId id = head;
  std::unordered_set<PageId> visited;
  std::vector<uint8_t> buf(store->page_size());
  while (id != kInvalidPageId) {
    if (!visited.insert(id).second) {
      return Status::Corruption("page chain cycle at page " +
                                std::to_string(id));
    }
    out->push_back(id);
    BMEH_RETURN_NOT_OK(store->Read(id, buf));
    uint32_t next;
    std::memcpy(&next, buf.data(), 4);
    id = next;
  }
  return Status::OK();
}

Status BmehTree::FreeImage(PageStore* store, PageId head) {
  PageId id = head;
  std::unordered_set<PageId> visited;
  std::vector<uint8_t> buf(store->page_size());
  while (id != kInvalidPageId) {
    if (!visited.insert(id).second) {
      return Status::Corruption("page chain cycle at page " +
                                std::to_string(id));
    }
    BMEH_RETURN_NOT_OK(store->Read(id, buf));
    uint32_t next;
    std::memcpy(&next, buf.data(), 4);
    BMEH_RETURN_NOT_OK(store->Free(id));
    id = next;
  }
  return Status::OK();
}

Result<PageId> BmehTree::SaveTo(PageStore* store) {
  if (degraded()) {
    // Serializing now would replace the (partially corrupt but still
    // diagnosable) on-disk state with a clean-looking image that silently
    // lacks the lost records.  Salvage to a fresh store instead.
    return Status::DataLoss("refusing to serialize a degraded tree (" +
                            std::to_string(quarantined_.size()) +
                            " quarantined buckets)");
  }
  ByteWriter w;
  const int d = schema_.dims();
  w.U32(kTreeMagic);
  w.U32(static_cast<uint32_t>(d));
  for (int j = 0; j < d; ++j) w.U32(static_cast<uint32_t>(schema_.width(j)));
  w.U32(static_cast<uint32_t>(options_.page_capacity));
  for (int j = 0; j < d; ++j) w.U32(static_cast<uint32_t>(options_.xi[j]));
  w.U64(options_.max_nodes);
  w.U8(options_.merge_on_delete ? 1 : 0);
  w.U32(root_id_);
  w.U32(static_cast<uint32_t>(levels_));
  w.U64(records_);

  w.U64(nodes_.live_count());
  nodes_.ForEach([&](uint32_t id, const DirNode& node) {
    w.U32(id);
    const auto& hist = node.history();
    w.U32(static_cast<uint32_t>(hist.event_count()));
    for (int i = 0; i < hist.event_count(); ++i) {
      w.U8(static_cast<uint8_t>(hist.event_dim(i)));
    }
    for (uint64_t a = 0; a < node.entry_count(); ++a) {
      const Entry& e = node.at_address(a);
      w.U8(static_cast<uint8_t>(e.ref.kind));
      w.U32(e.ref.id);
      for (int j = 0; j < d; ++j) w.U8(e.h[j]);
      w.U8(e.m);
    }
  });

  w.U64(pages_.live_count());
  pages_.ForEach([&](uint32_t id, const DataPage& page) {
    w.U32(id);
    w.U32(static_cast<uint32_t>(page.size()));
    for (const Record& rec : page.records()) {
      for (int j = 0; j < d; ++j) w.U32(rec.key.component(j));
      w.U64(rec.payload);
    }
  });

  return WriteChain(store, w.bytes());
}

Result<std::unique_ptr<BmehTree>> BmehTree::LoadFrom(PageStore* store,
                                                     PageId head) {
  return LoadImpl(store, head, nullptr);
}

Result<std::unique_ptr<BmehTree>> BmehTree::LoadFromTolerant(
    PageStore* store, PageId head, TreeLoadReport* report) {
  BMEH_CHECK(report != nullptr);
  *report = TreeLoadReport{};
  auto res = LoadImpl(store, head, report);
  if (!res.ok()) {
    // Page-section damage is absorbed inside LoadImpl, so any error
    // means the header/directory part could not be rebuilt.
    report->directory_lost = true;
  }
  return res;
}

Result<std::unique_ptr<BmehTree>> BmehTree::LoadImpl(PageStore* store,
                                                     PageId head,
                                                     TreeLoadReport* report) {
  std::vector<uint8_t> bytes;
  bool chain_complete = true;
  if (report == nullptr) {
    BMEH_ASSIGN_OR_RETURN(bytes, ReadChain(store, head));
  } else {
    ChainPrefix prefix = ReadChainPrefix(store, head);
    bytes = std::move(prefix.bytes);
    chain_complete = prefix.complete;
    report->complete = prefix.complete;
    report->data_loss = prefix.data_loss;
    report->chain_pages = std::move(prefix.pages);
  }
  ByteReader r(bytes);
  BMEH_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kTreeMagic) {
    return Status::Corruption("bad BMEH tree magic");
  }
  BMEH_ASSIGN_OR_RETURN(uint32_t d32, r.U32());
  const int d = static_cast<int>(d32);
  if (d < 1 || d > kMaxDims) {
    return Status::Corruption("bad dimension count " + std::to_string(d));
  }
  std::array<int, kMaxDims> widths{};
  for (int j = 0; j < d; ++j) {
    BMEH_ASSIGN_OR_RETURN(uint32_t wj, r.U32());
    if (wj < 1 || wj > 32) return Status::Corruption("bad key width");
    widths[j] = static_cast<int>(wj);
  }
  KeySchema schema(std::span<const int>(widths.data(), d));

  TreeOptions options;
  BMEH_ASSIGN_OR_RETURN(uint32_t b, r.U32());
  options.page_capacity = static_cast<int>(b);
  for (int j = 0; j < d; ++j) {
    BMEH_ASSIGN_OR_RETURN(uint32_t xij, r.U32());
    options.xi[j] = static_cast<int>(xij);
  }
  BMEH_ASSIGN_OR_RETURN(options.max_nodes, r.U64());
  BMEH_ASSIGN_OR_RETURN(uint8_t merge, r.U8());
  options.merge_on_delete = (merge != 0);
  if (options.page_capacity < 1) return Status::Corruption("bad capacity");

  auto tree = std::make_unique<BmehTree>(schema, options);
  // Discard the constructor's fresh root; rebuild everything from the
  // image.
  tree->nodes_.Destroy(tree->root_id_);

  BMEH_ASSIGN_OR_RETURN(uint32_t root, r.U32());
  BMEH_ASSIGN_OR_RETURN(uint32_t levels, r.U32());
  BMEH_ASSIGN_OR_RETURN(uint64_t records, r.U64());
  tree->root_id_ = root;
  tree->levels_ = static_cast<int>(levels);
  tree->records_ = records;
  if (report != nullptr) report->records_declared = records;

  // Defensive bound on ids so a corrupted image cannot force a gigantic
  // arena allocation.
  constexpr uint32_t kMaxImageId = uint32_t{1} << 26;

  BMEH_ASSIGN_OR_RETURN(uint64_t n_nodes, r.U64());
  for (uint64_t n = 0; n < n_nodes; ++n) {
    BMEH_ASSIGN_OR_RETURN(uint32_t id, r.U32());
    if (id > kMaxImageId) return Status::Corruption("node id out of range");
    if (tree->nodes_.Alive(id)) {
      return Status::Corruption("duplicate node id in image");
    }
    tree->nodes_.CreateAt(id);
    DirNode* node = tree->nodes_.Get(id);
    BMEH_ASSIGN_OR_RETURN(uint32_t n_events, r.U32());
    if (n_events > 32u * kMaxDims) {
      return Status::Corruption("bad node event count");
    }
    for (uint32_t i = 0; i < n_events; ++i) {
      BMEH_ASSIGN_OR_RETURN(uint8_t dim, r.U8());
      if (dim >= d) return Status::Corruption("bad doubling dimension");
      if (node->depth(dim) >= schema.width(dim)) {
        return Status::Corruption("node deeper than key width");
      }
      node->Double(dim);
    }
    for (uint64_t a = 0; a < node->entry_count(); ++a) {
      Entry e;
      BMEH_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
      if (kind > static_cast<uint8_t>(RefKind::kNode)) {
        return Status::Corruption("bad ref kind");
      }
      e.ref.kind = static_cast<RefKind>(kind);
      BMEH_ASSIGN_OR_RETURN(e.ref.id, r.U32());
      if (!e.ref.is_nil() && e.ref.id > kMaxImageId) {
        return Status::Corruption("ref id out of range");
      }
      for (int j = 0; j < d; ++j) {
        BMEH_ASSIGN_OR_RETURN(e.h[j], r.U8());
        if (e.h[j] > node->depth(j)) {
          return Status::Corruption("entry local depth exceeds node depth");
        }
      }
      BMEH_ASSIGN_OR_RETURN(e.m, r.U8());
      if (e.m >= d) return Status::Corruption("bad entry split dimension");
      node->at_address(a) = e;
    }
  }
  if (!tree->nodes_.Alive(tree->root_id_)) {
    return Status::Corruption("root node missing from image");
  }

  // ---- data pages ----
  // Everything before this point had to parse: without the directory
  // there is no tree.  From here on, a cut chain (tolerant mode only)
  // degrades gracefully — the records that fell past the cut turn into
  // quarantined empty buckets instead of a failed load.
  const bool tolerate_cut = (report != nullptr && !chain_complete);
  auto parse_page = [&](uint32_t* created) -> Status {
    BMEH_ASSIGN_OR_RETURN(uint32_t id, r.U32());
    if (id > kMaxImageId) return Status::Corruption("page id out of range");
    if (tree->pages_.Alive(id)) {
      return Status::Corruption("duplicate page id in image");
    }
    tree->pages_.CreateAt(id);
    *created = id;
    DataPage* page = tree->pages_.Get(id);
    BMEH_ASSIGN_OR_RETURN(uint32_t size, r.U32());
    if (size > static_cast<uint32_t>(options.page_capacity)) {
      return Status::Corruption("page record count over capacity");
    }
    for (uint32_t i = 0; i < size; ++i) {
      std::array<uint32_t, kMaxDims> comps{};
      for (int j = 0; j < d; ++j) {
        BMEH_ASSIGN_OR_RETURN(comps[j], r.U32());
      }
      Record rec;
      rec.key = PseudoKey(std::span<const uint32_t>(comps.data(), d));
      BMEH_ASSIGN_OR_RETURN(rec.payload, r.U64());
      if (!schema.Validate(rec.key).ok()) {
        return Status::Corruption("record key outside schema domain");
      }
      if (!page->Insert(rec).ok()) {
        return Status::Corruption("duplicate record key in page image");
      }
    }
    return Status::OK();
  };

  uint64_t n_pages = 0;
  bool pages_cut = false;
  {
    auto n = r.U64();
    if (n.ok()) {
      n_pages = std::move(n).ValueOrDie();
    } else if (tolerate_cut) {
      pages_cut = true;
    } else {
      return n.status();
    }
  }
  for (uint64_t n = 0; n < n_pages && !pages_cut; ++n) {
    uint32_t created = kInvalidPageId;
    const Status st = parse_page(&created);
    if (!st.ok()) {
      if (!tolerate_cut) return st;
      // A half-parsed bucket is as lost as an unparsed one: drop it so
      // the quarantine sweep below rebuilds it as an empty placeholder.
      if (created != kInvalidPageId) tree->pages_.Destroy(created);
      pages_cut = true;
    }
  }
  if (!pages_cut && !r.AtEnd() && !tolerate_cut) {
    return Status::Corruption("trailing bytes in BMEH tree image");
  }
  if (tolerate_cut) {
    // Any bucket the directory references but the prefix did not deliver
    // is lost: give it an empty placeholder page and quarantine it.
    tree->nodes_.ForEach([&](uint32_t, const DirNode& node) {
      node.ForEachGroup([&](const IndexTuple&, const Entry& e) {
        if (e.ref.is_page() && !tree->pages_.Alive(e.ref.id)) {
          tree->pages_.CreateAt(e.ref.id);
          tree->quarantined_.insert(e.ref.id);
        }
      });
    });
    report->quarantined_pages = tree->quarantined_.size();
  }
  BMEH_RETURN_NOT_OK(tree->Validate());
  return tree;
}

}  // namespace bmeh
