// Partial-range retrieval for the BMEH-tree (paper §4.4, PRG_Search).

#include "src/core/bmeh_tree.h"
#include "src/hashdir/range_walk.h"

namespace bmeh {

using hashdir::DirNode;

Status BmehTree::RangeSearch(const RangePredicate& pred,
                             std::vector<Record>* out) {
  hashdir::RangeWalkStats stats;
  return RangeSearchWithStats(pred, out, &stats);
}

Status BmehTree::RangeSearchWithStats(const RangePredicate& pred,
                                      std::vector<Record>* out,
                                      hashdir::RangeWalkStats* stats) {
  hashdir::RangeWalkCallbacks cbs;
  cbs.get_node = [this](uint32_t id, int) -> const DirNode* {
    if (!nodes_.Alive(id)) return nullptr;
    if (id != root_id_) io_.CountDirRead();
    return nodes_.Get(id);
  };
  uint64_t lost_buckets = 0;
  cbs.visit_page = [this, &lost_buckets](uint32_t page_id,
                                         const RangePredicate& p,
                                         std::vector<Record>* o) {
    if (quarantined_.count(page_id) != 0) {
      // The bucket overlaps the query but its records are gone; keep
      // walking so the caller still gets every surviving match.
      ++lost_buckets;
      return;
    }
    io_.CountDataRead();
    for (const Record& rec : pages_.Get(page_id)->records()) {
      if (p.Matches(rec.key)) o->push_back(rec);
    }
  };
  BMEH_RETURN_NOT_OK(hashdir::RangeWalk(schema_, pred,
                                        hashdir::Ref::Node(root_id_), cbs,
                                        out, stats));
  if (lost_buckets > 0) {
    // The surviving matches are in `out`; the status says they may not be
    // all of them.
    return Status::DataLoss("range result is partial: " +
                            std::to_string(lost_buckets) +
                            " overlapping bucket(s) lost to corruption");
  }
  return Status::OK();
}

}  // namespace bmeh
