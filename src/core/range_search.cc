// Partial-range retrieval for the BMEH-tree (paper §4.4, PRG_Search).

#include "src/core/bmeh_tree.h"
#include "src/hashdir/range_walk.h"

namespace bmeh {

using hashdir::DirNode;

Status BmehTree::RangeSearch(const RangePredicate& pred,
                             std::vector<Record>* out) {
  hashdir::RangeWalkStats stats;
  return RangeSearchWithStats(pred, out, &stats);
}

Status BmehTree::RangeSearchWithStats(const RangePredicate& pred,
                                      std::vector<Record>* out,
                                      hashdir::RangeWalkStats* stats) {
  hashdir::RangeWalkCallbacks cbs;
  cbs.get_node = [this](uint32_t id, int) -> const DirNode* {
    if (!nodes_.Alive(id)) return nullptr;
    if (id != root_id_) io_.CountDirRead();
    return nodes_.Get(id);
  };
  cbs.visit_page = [this](uint32_t page_id, const RangePredicate& p,
                          std::vector<Record>* o) {
    io_.CountDataRead();
    for (const Record& rec : pages_.Get(page_id)->records()) {
      if (p.Matches(rec.key)) o->push_back(rec);
    }
  };
  return hashdir::RangeWalk(schema_, pred, hashdir::Ref::Node(root_id_), cbs,
                            out, stats);
}

}  // namespace bmeh
