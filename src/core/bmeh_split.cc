// Growth machinery of the BMEH-tree (paper §3.1, §4.1).
//
// A full insertion may require a chain of structural changes.  Each call
// below performs exactly ONE change (page-group split, node doubling,
// balanced node split, or new root) and returns; the insertion loop then
// re-descends and retries.  This mirrors the paper's BMEH_Insert, which
// also re-invokes itself from the root after restructuring, and keeps
// every step simple enough to reason about:
//
//   page full
//     -> group split inside the leaf node        (h_m < H_m)
//     -> node doubling                           (h_m = H_m < xi_m)
//     -> balanced node split by the leading bit  (H_m = xi_m), which may
//        first require the parent to double or split (recursion toward the
//        root; a root split creates a new root and deepens every path).
//
// The delicate case is the balanced node split: an entry group with
// h_m = 0 spans both halves of the node.  Following the K-D-B-tree idea
// the paper builds on, such children are FORCE-SPLIT by the same key bit
// first (a data page repartitions its records; a child node splits
// recursively), so the directory remains a strict tree and the tree stays
// perfectly height-balanced.

#include "src/common/bit_util.h"
#include "src/core/bmeh_tree.h"
#include "src/hashdir/split_util.h"

namespace bmeh {

using hashdir::DirNode;
using hashdir::Entry;
using hashdir::IndexTuple;
using hashdir::PathStep;
using hashdir::Ref;

Status BmehTree::SplitLeafOnce(const std::vector<PathStep>& path) {
  const PathStep& leaf = path.back();
  DirNode* node = nodes_.Get(leaf.node_id);
  const Entry e = node->at(leaf.tuple);
  BMEH_DCHECK(e.ref.is_page());

  // Hard limit: the split bit must exist within the pseudo-key width.
  std::array<int, kMaxDims> limits{};
  for (int j = 0; j < schema_.dims(); ++j) {
    limits[j] = schema_.width(j) - leaf.consumed[j];
  }
  const int m = hashdir::ChooseSplitDim(
      e, std::span<const int>(limits.data(), schema_.dims()), schema_.dims());
  if (m < 0) {
    return Status::CapacityError(
        "page region cannot split: all pseudo-key bits consumed");
  }

  if (e.h[m] < node->depth(m)) {
    ++mutations_.page_splits;
    return hashdir::SplitPageGroup(schema_, node, leaf.tuple, m,
                                   leaf.consumed, &pages_, &io_);
  }
  if (node->depth(m) < options_.xi[m]) {
    node->Double(m);
    ++mutations_.node_doublings;
    io_.CountDirWrite();
    return Status::OK();
  }
  // Node at its cap along m: balanced node split (growth toward the root).
  return SplitNodeAt(path, path.size() - 1, m);
}

Status BmehTree::SplitNodeAt(const std::vector<PathStep>& path, size_t level,
                             int m) {
  const uint32_t node_id = path[level].node_id;
  if (level == 0) {
    // Splitting the root: first grow a new root above it; the next attempt
    // will split the old root into the new root's two entries.
    if (nodes_.live_count() + 1 > options_.max_nodes) {
      return Status::CapacityError("directory node cap exceeded");
    }
    BMEH_DCHECK(node_id == root_id_);
    const uint32_t new_root = nodes_.Create();
    nodes_.Get(new_root)->at_address(0) =
        hashdir::MakeEntry(Ref::Node(node_id), schema_.dims());
    root_id_ = new_root;
    ++levels_;
    ++mutations_.new_roots;
    io_.CountDirWrite();
    return Status::OK();
  }

  const PathStep& pstep = path[level - 1];
  DirNode* parent = nodes_.Get(pstep.node_id);
  const Entry pe = parent->at(pstep.tuple);
  BMEH_DCHECK(pe.ref == Ref::Node(node_id));

  if (pe.h[m] == parent->depth(m)) {
    if (parent->depth(m) < options_.xi[m]) {
      parent->Double(m);
      ++mutations_.node_doublings;
      io_.CountDirWrite();
      return Status::OK();
    }
    // The parent is full along m as well: split it first (§3.1 — "this may
    // generate further splitting and eventually cause the root node to
    // split as well").
    return SplitNodeAt(path, level - 1, m);
  }

  // The parent has room for one more dimension-m bit: split the node.
  // A balanced split force-splits every spanning child node recursively,
  // and each split in that cascade nets one extra live node (two created,
  // one destroyed) with a transient peak of one more.  Size the whole
  // cascade against the cap up front: failing mid-cascade would leave a
  // half-split subtree with no rollback.
  const uint64_t cascade_splits = CountBalancedSplitNodes(node_id, m);
  if (nodes_.live_count() + cascade_splits + 1 > options_.max_nodes) {
    return Status::CapacityError("directory node cap exceeded");
  }
  BMEH_ASSIGN_OR_RETURN(auto halves,
                        SplitNodeByLeadingBit(node_id, m,
                                              path[level].consumed));
  parent->SplitGroup(pstep.tuple, m, Ref::Node(halves.first),
                     Ref::Node(halves.second));
  io_.CountDirWrite();
  // Canonicalize both halves so that a half left (nearly) empty by the
  // split does not freeze as an unreachable skeleton.  Safe with respect
  // to the pending insertion: the trigger group's page is full, so the
  // strict merge threshold cannot re-absorb it, and its local depth pins
  // the half's depth along m against halving.
  if (options_.merge_on_delete) {
    TidyNode(halves.first);
    TidyNode(halves.second);
  }
  return Status::OK();
}

uint64_t BmehTree::CountBalancedSplitNodes(uint32_t node_id, int m) const {
  const DirNode* node = nodes_.Get(node_id);
  uint64_t splits = 1;  // this node itself
  node->ForEachGroup([&](const IndexTuple&, const Entry& e) {
    if (!e.ref.is_node()) return;  // pages don't consume directory nodes
    // SplitNodeByLeadingBit force-splits exactly the child nodes whose
    // region spans the split plane: every group with h_m = 0 when the
    // node indexes dimension m, and every group otherwise.
    if (node->depth(m) >= 1 && e.h[m] != 0) return;
    splits += CountBalancedSplitNodes(e.ref.id, m);
  });
  return splits;
}

Result<std::pair<uint32_t, uint32_t>> BmehTree::SplitNodeByLeadingBit(
    uint32_t node_id, int m,
    const std::array<uint16_t, kMaxDims>& consumed) {
  DirNode* node = nodes_.Get(node_id);
  const int d = schema_.dims();
  ++mutations_.node_splits;
  io_.CountDirRead();

  if (node->depth(m) >= 1) {
    // Normalize: force-split every group whose region spans both halves
    // (h_m = 0), so partitioning by the leading i_m bit is well defined.
    std::vector<IndexTuple> spanning;
    node->ForEachGroup([&](const IndexTuple& rep, const Entry& e) {
      if (e.h[m] == 0) spanning.push_back(rep);
    });
    for (const IndexTuple& rep : spanning) {
      const Entry e = node->at(rep);
      std::pair<Ref, Ref> halves{Ref::Nil(), Ref::Nil()};
      if (!e.ref.is_nil()) {
        std::array<uint16_t, kMaxDims> child_consumed = consumed;
        for (int j = 0; j < d; ++j) {
          child_consumed[j] = static_cast<uint16_t>(consumed[j] + e.h[j]);
        }
        BMEH_ASSIGN_OR_RETURN(halves, ForceSplitChild(e.ref, m,
                                                      child_consumed));
      }
      node->SplitGroup(rep, m, halves.first, halves.second);
    }

    // Partition the entries into two nodes by the leading i_m bit; each
    // half drops that bit (its depth along m is one less, and one bit of
    // every entry's local depth h_m moves up to the parent — the paper's
    // "local depth h_1 of every directory entry ... is decreased by one").
    const uint32_t left_id = nodes_.Create();
    const uint32_t right_id = nodes_.Create();
    node = nodes_.Get(node_id);  // re-fetch: arena may have reallocated
    DirNode* left = nodes_.Get(left_id);
    DirNode* right = nodes_.Get(right_id);
    ReplayShape(*node, m, left);
    ReplayShape(*node, m, right);
    const uint32_t half =
        static_cast<uint32_t>(bit_util::Pow2(node->depth(m) - 1));
    std::array<int, kMaxDims> depths{};
    for (int j = 0; j < d; ++j) depths[j] = node->depth(j);
    for (extarray::TupleOdometer od(std::span<const int>(depths.data(), d));
         !od.done(); od.Next()) {
      IndexTuple t = od.tuple();
      Entry e = node->at(t);
      BMEH_DCHECK(e.h[m] >= 1);
      e.h[m] = static_cast<uint8_t>(e.h[m] - 1);
      if (t[m] < half) {
        left->at(t) = e;
      } else {
        t[m] -= half;
        right->at(t) = e;
      }
    }
    nodes_.Destroy(node_id);
    io_.CountDirWrite(2);
    return std::make_pair(left_id, right_id);
  }

  // depth(m) == 0: the node does not index dimension m at all, so both
  // halves have its exact shape and every child is force-split.
  std::vector<std::pair<IndexTuple, Entry>> groups;
  node->ForEachGroup([&](const IndexTuple& rep, const Entry& e) {
    groups.emplace_back(rep, e);
  });
  std::vector<std::pair<Ref, Ref>> halves_of(groups.size(),
                                             {Ref::Nil(), Ref::Nil()});
  for (size_t g = 0; g < groups.size(); ++g) {
    const Entry& e = groups[g].second;
    if (e.ref.is_nil()) continue;
    std::array<uint16_t, kMaxDims> child_consumed = consumed;
    for (int j = 0; j < d; ++j) {
      child_consumed[j] = static_cast<uint16_t>(consumed[j] + e.h[j]);
    }
    BMEH_ASSIGN_OR_RETURN(halves_of[g],
                          ForceSplitChild(e.ref, m, child_consumed));
  }
  const uint32_t left_id = nodes_.Create();
  const uint32_t right_id = nodes_.Create();
  node = nodes_.Get(node_id);
  DirNode* left = nodes_.Get(left_id);
  DirNode* right = nodes_.Get(right_id);
  ReplayShape(*node, /*skip_dim=*/-1, left);
  ReplayShape(*node, /*skip_dim=*/-1, right);
  for (size_t g = 0; g < groups.size(); ++g) {
    Entry le = groups[g].second;
    le.ref = halves_of[g].first;
    Entry re = groups[g].second;
    re.ref = halves_of[g].second;
    node->ForEachInGroup(groups[g].first, [&](const IndexTuple& member) {
      left->at(member) = le;
      right->at(member) = re;
    });
  }
  nodes_.Destroy(node_id);
  io_.CountDirWrite(2);
  return std::make_pair(left_id, right_id);
}

Result<std::pair<Ref, Ref>> BmehTree::ForceSplitChild(
    Ref child, int m, const std::array<uint16_t, kMaxDims>& consumed) {
  ++mutations_.forced_splits;
  if (child.is_node()) {
    BMEH_ASSIGN_OR_RETURN(auto halves,
                          SplitNodeByLeadingBit(child.id, m, consumed));
    // A forced clone may be (near-)empty — e.g. all of the region's data
    // lay on one side.  No deletion path ever descends into an empty
    // clone, so canonicalize it now; this is also what keeps the shapes
    // of drained siblings equal so they can re-merge later.
    if (options_.merge_on_delete) {
      TidyNode(halves.first);
      TidyNode(halves.second);
    }
    return std::make_pair(Ref::Node(halves.first), Ref::Node(halves.second));
  }
  BMEH_DCHECK(child.is_page());
  if (quarantined_.count(child.id) != 0) {
    // Splitting the empty placeholder would demote "records lost here" to
    // "region empty" — a silent answer downgrade.  Fail the structural
    // change instead; the insert that triggered it surfaces DataLoss.
    return Status::DataLoss("cannot split bucket " + std::to_string(child.id) +
                            ": its records were lost to corruption");
  }
  const int w = schema_.width(m);
  const int split_bit = consumed[m];
  if (split_bit >= w) {
    return Status::CapacityError(
        "force split beyond pseudo-key width in dim " + std::to_string(m));
  }
  // Fresh ids for both halves, old id tombstoned — see SplitPageGroup for
  // why a lock-free reader must never pair a stale parent snapshot with a
  // narrowed page republished at the old id.
  const DataPage* old_page = std::as_const(pages_).Get(child.id);
  io_.CountDataRead();
  const uint32_t left_pid = pages_.Create();
  const uint32_t right_pid = pages_.Create();
  DataPage* left_page = pages_.Get(left_pid);
  DataPage* right_page = pages_.Get(right_pid);
  for (const Record& rec : old_page->records()) {
    const bool high =
        bit_util::BitAt(rec.key.component(m), w, split_bit) == 1;
    BMEH_CHECK_OK((high ? right_page : left_page)->Insert(rec));
  }
  pages_.Destroy(child.id);
  Ref left = Ref::Page(left_pid);
  Ref right = Ref::Page(right_pid);
  // A force-split may leave one side empty; empty pages are dropped
  // immediately (§2.1).
  if (right_page->empty()) {
    pages_.Destroy(right_pid);
    right = Ref::Nil();
  }
  if (left_page->empty()) {
    pages_.Destroy(left_pid);
    left = Ref::Nil();
  }
  io_.CountDataWrite((left.is_nil() ? 0 : 1) + (right.is_nil() ? 0 : 1));
  return std::make_pair(left, right);
}

void BmehTree::ReplayShape(const DirNode& src, int skip_dim, DirNode* dst) {
  const auto& hist = src.history();
  bool skipped = false;
  for (int i = 0; i < hist.event_count(); ++i) {
    const int dim = hist.event_dim(i);
    if (!skipped && dim == skip_dim) {
      skipped = true;
      continue;
    }
    dst->Double(dim);
  }
  BMEH_DCHECK(skip_dim < 0 || skipped);
}

}  // namespace bmeh
