// Balanced binary quadtree / octtree (paper §6).
//
// "The ideas in the BMEH-tree may be extended to generate another breed of
// tree structures that may be characterized as Balanced Binary Quadtree,
// Octtree etc.  This is easily achieved by setting xi_j = 1 for every
// dimension."  Standard quadtrees are notoriously hard to balance; this
// specialization inherits the BMEH-tree's perfect height balance for free.
//
// The wrapper exposes a geometric API over the unit hypercube [0,1)^d:
// points are encoded with an order-preserving fixed-point encoding of
// `bits_per_dim` bits per coordinate.

#ifndef BMEH_CORE_QUADTREE_H_
#define BMEH_CORE_QUADTREE_H_

#include <array>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/core/bmeh_tree.h"

namespace bmeh {

/// \brief A point result of a box query.
struct QuadtreePoint {
  std::array<double, kMaxDims> coords{};
  uint64_t payload = 0;
};

/// \brief Height-balanced quadtree (d=2) / octtree (d=3) over [0,1)^d.
class BalancedQuadtree {
 public:
  struct Options {
    int dims = 2;
    int page_capacity = 8;   ///< Points per leaf bucket.
    int bits_per_dim = 24;   ///< Fixed-point resolution per coordinate.
  };

  explicit BalancedQuadtree(const Options& options);

  int dims() const { return options_.dims; }

  /// \brief Inserts a point (coordinates clamped to [0,1)).  Two points
  /// that collide at the fixed-point resolution are duplicates.
  Status Insert(std::span<const double> point, uint64_t payload);

  /// \brief Looks up the payload stored at `point`.
  Result<uint64_t> Search(std::span<const double> point);

  /// \brief Removes the point.
  Status Delete(std::span<const double> point);

  /// \brief Appends every stored point inside the closed box [lo, hi].
  Status BoxSearch(std::span<const double> lo, std::span<const double> hi,
                   std::vector<QuadtreePoint>* out);

  /// \brief A k-nearest-neighbour hit: the point and its Euclidean
  /// distance from the query.
  struct Neighbor {
    QuadtreePoint point;
    double distance = 0.0;
  };

  /// \brief The `k` stored points nearest to `query` (Euclidean metric),
  /// nearest first.  Returns fewer when the tree holds fewer points.
  ///
  /// Implemented by expanding-box search over the order-preserving
  /// directory (the closest-point application of Tamminen's extendible
  /// cell method, which the paper cites as ref [23]): the box half-width
  /// doubles until the k-th candidate's true distance is covered by the
  /// box, which guarantees no nearer point lies outside it.
  Status NearestNeighbors(std::span<const double> query, int k,
                          std::vector<Neighbor>* out);

  /// \brief Number of stored points.
  uint64_t size() const { return tree_.Stats().records; }

  /// \brief Tree height (every leaf at the same depth — the balance the
  /// standard quadtree lacks).
  int height() const { return tree_.height(); }

  /// \brief The underlying BMEH-tree (each node is a 2^d-way split).
  const BmehTree& tree() const { return tree_; }
  BmehTree* mutable_tree() { return &tree_; }

 private:
  uint32_t EncodeCoord(double v) const;
  double DecodeCoord(uint32_t code) const;
  PseudoKey Encode(std::span<const double> point) const;

  Options options_;
  KeySchema schema_;
  BmehTree tree_;
};

}  // namespace bmeh

#endif  // BMEH_CORE_QUADTREE_H_
