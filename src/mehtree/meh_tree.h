// MEH-tree: multidimensional extendible hash tree (paper §4.3; the second
// baseline).
//
// The directory is a tree of fixed-capacity nodes that grows *from the
// root downwards*: when a group inside a node has reached the node's depth
// cap xi_m along its split dimension, a fresh child node is spawned below
// and splitting continues inside it.  The tree is therefore not height
// balanced — dense regions get deeper subtrees — and node blocks in sparse
// regions stay mostly unused, which is why the paper finds the MEH-tree's
// directory can be even larger than MDEH's flat directory.

#ifndef BMEH_MEHTREE_MEH_TREE_H_
#define BMEH_MEHTREE_MEH_TREE_H_

#include <string>
#include <vector>

#include "src/hashdir/arena.h"
#include "src/hashdir/descent.h"
#include "src/hashdir/multikey_index.h"
#include "src/hashdir/tree_options.h"

namespace bmeh {

/// \brief Top-down-growing multidimensional extendible hash tree.
class MehTree : public MultiKeyIndex {
 public:
  MehTree(const KeySchema& schema, const TreeOptions& options);

  const KeySchema& schema() const override { return schema_; }
  int page_capacity() const override { return options_.page_capacity; }

  Status Insert(const PseudoKey& key, uint64_t payload) override;
  Result<uint64_t> Search(const PseudoKey& key) override;
  Status Delete(const PseudoKey& key) override;
  Status RangeSearch(const RangePredicate& pred,
                     std::vector<Record>* out) override;
  IndexStructureStats Stats() const override;
  Status Validate() const override;
  std::string name() const override { return "MEH-tree"; }

  /// \brief Number of directory nodes.
  uint64_t node_count() const { return nodes_.live_count(); }

  uint32_t root_id() const { return root_id_; }
  const hashdir::NodeArena& nodes() const { return nodes_; }

 private:
  /// Performs one structural change toward making room for `key`'s page;
  /// the caller re-descends and retries.
  Status SplitLeafOnce(const std::vector<hashdir::PathStep>& path,
                       const PseudoKey& key);

  /// Buddy-merge cleanup after a deletion along `path`, cascading upward
  /// (reversal of the top-down growth).
  void MergeAfterDelete(std::vector<hashdir::PathStep> path);

  KeySchema schema_;
  TreeOptions options_;
  hashdir::NodeArena nodes_;
  hashdir::PageArena pages_;
  uint32_t root_id_;
  uint64_t records_ = 0;
};

}  // namespace bmeh

#endif  // BMEH_MEHTREE_MEH_TREE_H_
