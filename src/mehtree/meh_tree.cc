#include "src/mehtree/meh_tree.h"

#include <unordered_set>

#include "src/common/bit_util.h"
#include "src/hashdir/range_walk.h"
#include "src/hashdir/split_util.h"

namespace bmeh {

using hashdir::DirNode;
using hashdir::Entry;
using hashdir::IndexTuple;
using hashdir::PathStep;
using hashdir::Ref;

MehTree::MehTree(const KeySchema& schema, const TreeOptions& options)
    : schema_(schema),
      options_(options),
      nodes_(schema.dims()),
      pages_(options.page_capacity) {
  BMEH_CHECK(options.page_capacity >= 1);
  for (int j = 0; j < schema_.dims(); ++j) {
    BMEH_CHECK(options_.xi[j] >= 1 && options_.xi[j] <= schema_.width(j))
        << "xi out of range for dim " << j;
  }
  root_id_ = nodes_.Create();
}

Status MehTree::Insert(const PseudoKey& key, uint64_t payload) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  const int max_attempts = 4 * schema_.total_bits() + 16;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    BMEH_ASSIGN_OR_RETURN(std::vector<PathStep> path,
                          hashdir::DescendToLeaf(schema_, nodes_, root_id_,
                                                 key, &io_));
    const PathStep& leaf = path.back();
    DirNode* node = nodes_.Get(leaf.node_id);
    Entry& e = node->at(leaf.tuple);
    if (e.ref.is_nil()) {
      const uint32_t pid = pages_.Create();
      node->SetGroupRef(leaf.tuple, Ref::Page(pid));
      io_.CountDirWrite();
      BMEH_CHECK_OK(pages_.Get(pid)->Insert({key, payload}));
      io_.CountDataWrite();
      ++records_;
      return Status::OK();
    }
    DataPage* page = pages_.Get(e.ref.id);
    io_.CountDataRead();
    if (page->Contains(key)) {
      return Status::AlreadyExists("key " + key.ToString() +
                                   " already present");
    }
    if (!page->full()) {
      BMEH_CHECK_OK(page->Insert({key, payload}));
      io_.CountDataWrite();
      ++records_;
      return Status::OK();
    }
    BMEH_RETURN_NOT_OK(SplitLeafOnce(path, key));
  }
  return Status::CapacityError(
      "insertion did not converge for " + key.ToString());
}

Status MehTree::SplitLeafOnce(const std::vector<PathStep>& path,
                              const PseudoKey& key) {
  (void)key;
  const PathStep& leaf = path.back();
  DirNode* node = nodes_.Get(leaf.node_id);
  const Entry e = node->at(leaf.tuple);
  BMEH_DCHECK(e.ref.is_page());

  // Hard limit: splitting must not address bits beyond the key width.
  std::array<int, kMaxDims> limits{};
  for (int j = 0; j < schema_.dims(); ++j) {
    limits[j] = schema_.width(j) - leaf.consumed[j];
  }
  const int m = hashdir::ChooseSplitDim(
      e, std::span<const int>(limits.data(), schema_.dims()),
      schema_.dims());
  if (m < 0) {
    return Status::CapacityError(
        "page region cannot split: all pseudo-key bits consumed");
  }

  if (e.h[m] == node->depth(m)) {
    if (node->depth(m) < options_.xi[m]) {
      // Room in the block: double the node in place.
      node->Double(m);
      io_.CountDirWrite();
    } else {
      // Node at its cap along m: spawn a child node below (top-down
      // growth; this is where MEH and BMEH diverge).
      if (nodes_.live_count() + 1 > options_.max_nodes) {
        return Status::CapacityError("directory node cap exceeded");
      }
      const uint32_t cid = nodes_.Create();
      DirNode* child = nodes_.Get(cid);
      Entry ce = hashdir::MakeEntry(e.ref, schema_.dims());
      ce.m = e.m;  // the split-dimension cycle continues in the child
      child->at_address(0) = ce;
      node->SetGroupRef(leaf.tuple, Ref::Node(cid));
      io_.CountDirWrite(2);
    }
    return Status::OK();  // structural change made; caller re-descends
  }
  return hashdir::SplitPageGroup(schema_, node, leaf.tuple, m, leaf.consumed,
                                 &pages_, &io_);
}

Result<uint64_t> MehTree::Search(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  BMEH_ASSIGN_OR_RETURN(std::vector<PathStep> path,
                        hashdir::DescendToLeaf(schema_, nodes_, root_id_, key,
                                               &io_));
  const PathStep& leaf = path.back();
  const Entry& e = nodes_.Get(leaf.node_id)->at(leaf.tuple);
  if (e.ref.is_nil()) {
    return Status::KeyError("key " + key.ToString() + " not found");
  }
  io_.CountDataRead();
  auto payload = pages_.Get(e.ref.id)->Lookup(key);
  if (!payload) {
    return Status::KeyError("key " + key.ToString() + " not found");
  }
  return *payload;
}

Status MehTree::Delete(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  BMEH_ASSIGN_OR_RETURN(std::vector<PathStep> path,
                        hashdir::DescendToLeaf(schema_, nodes_, root_id_, key,
                                               &io_));
  const PathStep& leaf = path.back();
  DirNode* node = nodes_.Get(leaf.node_id);
  const Entry e = node->at(leaf.tuple);
  if (e.ref.is_nil()) {
    return Status::KeyError("key " + key.ToString() + " not found");
  }
  DataPage* page = pages_.Get(e.ref.id);
  io_.CountDataRead();
  BMEH_RETURN_NOT_OK(page->Remove(key));
  io_.CountDataWrite();
  --records_;
  if (options_.merge_on_delete) {
    MergeAfterDelete(std::move(path));
  } else if (page->empty()) {
    node->SetGroupRef(leaf.tuple, Ref::Nil());
    io_.CountDirWrite();
    pages_.Destroy(page->id());
  }
  return Status::OK();
}

void MehTree::MergeAfterDelete(std::vector<PathStep> path) {
  // Reverse the growth bottom-up: merge buddy pages inside the leaf node,
  // shrink the node, collapse trivial nodes into their parent, then repeat
  // one level up.
  while (!path.empty()) {
    const PathStep step = path.back();
    path.pop_back();
    DirNode* node = nodes_.Get(step.node_id);
    IndexTuple t = step.tuple;
    hashdir::MergeGroupCascade(node, t, &pages_, options_.page_capacity,
                               &io_);
    hashdir::HalveNodeCascade(node, &t, &io_);
    if (path.empty()) break;  // the root never collapses in the MEH-tree
    // Collapse: a node whose single group spans everything with zero local
    // depths is pure indirection — the reverse of a spawn.
    IndexTuple origin{};
    const Entry& oe = node->at(origin);
    bool trivial = true;
    for (int j = 0; j < schema_.dims(); ++j) {
      if (oe.h[j] != 0) {
        trivial = false;
        break;
      }
    }
    if (!trivial || node->entry_count() != 1) continue;
    DirNode* parent = nodes_.Get(path.back().node_id);
    parent->SetGroupRef(path.back().tuple, oe.ref);
    io_.CountDirWrite();
    nodes_.Destroy(step.node_id);
  }
}

Status MehTree::RangeSearch(const RangePredicate& pred,
                            std::vector<Record>* out) {
  hashdir::RangeWalkStats stats;
  hashdir::RangeWalkCallbacks cbs;
  cbs.get_node = [this](uint32_t id, int) -> const DirNode* {
    if (!nodes_.Alive(id)) return nullptr;
    if (id != root_id_) io_.CountDirRead();
    return nodes_.Get(id);
  };
  cbs.visit_page = [this](uint32_t page_id, const RangePredicate& p,
                          std::vector<Record>* o) {
    io_.CountDataRead();
    for (const Record& rec : pages_.Get(page_id)->records()) {
      if (p.Matches(rec.key)) o->push_back(rec);
    }
  };
  return hashdir::RangeWalk(schema_, pred, Ref::Node(root_id_), cbs, out,
                            &stats);
}

IndexStructureStats MehTree::Stats() const {
  IndexStructureStats s;
  s.directory_nodes = nodes_.live_count();
  s.directory_entries =
      nodes_.live_count() * options_.node_block_entries(schema_.dims());
  uint64_t used = 0;
  nodes_.ForEach([&](uint32_t, const DirNode& n) { used += n.entry_count(); });
  s.directory_entries_used = used;
  s.data_pages = pages_.live_count();
  s.records = records_;

  // Maximum directory depth over all paths.
  struct Walk {
    const hashdir::NodeArena* nodes;
    uint64_t max_level = 0;
    void Visit(uint32_t id, int level) {
      max_level = std::max<uint64_t>(max_level, level);
      nodes->Get(id)->ForEachGroup([&](const IndexTuple&, const Entry& e) {
        if (e.ref.is_node()) Visit(e.ref.id, level + 1);
      });
    }
  } walk{&nodes_, 0};
  walk.Visit(root_id_, 1);
  s.directory_levels = walk.max_level;
  return s;
}

Status MehTree::Validate() const {
  std::unordered_set<uint32_t> seen_pages;
  std::unordered_set<uint32_t> seen_nodes;
  uint64_t seen_records = 0;

  struct Checker {
    const MehTree* self;
    std::unordered_set<uint32_t>* seen_pages;
    std::unordered_set<uint32_t>* seen_nodes;
    uint64_t* seen_records;

    Status Visit(uint32_t node_id, std::array<uint16_t, kMaxDims> consumed,
                 std::array<uint64_t, kMaxDims> prefix) {
      const int d = self->schema_.dims();
      if (!self->nodes_.Alive(node_id)) {
        return Status::Corruption("dangling node ref " +
                                  std::to_string(node_id));
      }
      if (!seen_nodes->insert(node_id).second) {
        return Status::Corruption("node " + std::to_string(node_id) +
                                  " referenced twice");
      }
      const DirNode& node = *self->nodes_.Get(node_id);
      for (int j = 0; j < d; ++j) {
        if (node.depth(j) > self->options_.xi[j]) {
          return Status::Corruption("node depth exceeds xi");
        }
        if (consumed[j] + node.depth(j) > self->schema_.width(j)) {
          return Status::Corruption("path deeper than key width");
        }
      }
      Status bad = Status::OK();
      node.ForEachGroup([&](const IndexTuple& rep, const Entry& e) {
        if (!bad.ok()) return;
        node.ForEachInGroup(rep, [&](const IndexTuple& member) {
          if (!bad.ok()) return;
          if (!node.at(member).SameShape(e, d)) {
            bad = Status::Corruption("group member entry mismatch");
          }
        });
        if (!bad.ok()) return;
        std::array<uint16_t, kMaxDims> child_consumed = consumed;
        std::array<uint64_t, kMaxDims> child_prefix = prefix;
        for (int j = 0; j < d; ++j) {
          if (e.h[j] > node.depth(j)) {
            bad = Status::Corruption("local depth exceeds node depth");
            return;
          }
          child_prefix[j] = (prefix[j] << e.h[j]) |
                            bit_util::IndexPrefix(rep[j], node.depth(j),
                                                  e.h[j]);
          child_consumed[j] =
              static_cast<uint16_t>(consumed[j] + e.h[j]);
        }
        if (e.ref.is_nil()) return;
        if (e.ref.is_node()) {
          bad = Visit(e.ref.id, child_consumed, child_prefix);
          return;
        }
        if (!self->pages_.Alive(e.ref.id)) {
          bad = Status::Corruption("dangling page ref");
          return;
        }
        if (!seen_pages->insert(e.ref.id).second) {
          bad = Status::Corruption("page referenced twice");
          return;
        }
        const DataPage* page = self->pages_.Get(e.ref.id);
        if (page->size() > self->options_.page_capacity) {
          bad = Status::Corruption("page over capacity");
          return;
        }
        *seen_records += page->size();
        for (const Record& rec : page->records()) {
          for (int j = 0; j < d; ++j) {
            uint64_t key_prefix = bit_util::ExtractBits(
                rec.key.component(j), self->schema_.width(j), 0,
                child_consumed[j]);
            if (key_prefix != child_prefix[j]) {
              bad = Status::Corruption("record " + rec.key.ToString() +
                                       " outside its page region");
              return;
            }
          }
        }
      });
      return bad;
    }
  } checker{this, &seen_pages, &seen_nodes, &seen_records};

  BMEH_RETURN_NOT_OK(checker.Visit(root_id_, {}, {}));
  if (seen_records != records_) {
    return Status::Corruption("record count mismatch");
  }
  if (seen_pages.size() != pages_.live_count()) {
    return Status::Corruption("orphaned data pages");
  }
  if (seen_nodes.size() != nodes_.live_count()) {
    return Status::Corruption("orphaned directory nodes");
  }
  return Status::OK();
}

}  // namespace bmeh
