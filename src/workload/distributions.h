// Key-distribution generators for the paper's §5 experiments.
//
// 1. uniform: each component a pseudo-random integer in [0, 2^31 - 1];
// 2. normal: each component a truncated discretized normal in the same
//    domain (the paper gives no mu/sigma; we use mu = 2^30, sigma = 2^28 —
//    DESIGN.md §2.6);
// plus generators the paper motivates but does not tabulate:
// 3. clustered: a mixture of Gaussian blobs (geographic-style hot spots);
// 4. adversarial: keys sharing a long common prefix (the "noise effect" of
//    §3 and the worst case of Theorems 2/3).

#ifndef BMEH_WORKLOAD_DISTRIBUTIONS_H_
#define BMEH_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/encoding/key_schema.h"
#include "src/encoding/pseudo_key.h"

namespace bmeh {
namespace workload {

enum class Distribution {
  kUniform,
  kNormal,
  kClustered,
  kAdversarialPrefix,
  /// Components strongly correlated (k_2 ~ k_1 + noise, etc.): the
  /// "diagonal" pattern typical of real multi-attribute data, a known
  /// stress case for symmetric multidimensional partitioning.
  kDiagonal,
};

const char* DistributionName(Distribution d);

/// \brief Parameters of a key stream.
struct WorkloadSpec {
  Distribution distribution = Distribution::kUniform;
  int dims = 2;
  int width = 31;  ///< Key bits per dimension; domain [0, 2^width - 1].
  uint64_t seed = 42;

  /// Normal distribution, as fractions of the domain size.  The defaults
  /// (mu at mid-domain, sigma = domain/16) reproduce the paper's Table 3
  /// shape, including the BMEH-tree's 4/3/3/3 lambda pattern.
  double normal_mean_frac = 0.5;
  double normal_sigma_frac = 0.0625;

  /// Clustered distribution.
  int cluster_count = 16;
  double cluster_sigma_frac = 0.01;

  /// Adversarial: all keys agree on the first (width - free_bits) bits of
  /// every component.
  int adversarial_free_bits = 6;

  /// Diagonal: components j >= 1 are component 0 plus Gaussian noise of
  /// this many domain fractions (clamped to the domain).
  double diagonal_noise_frac = 0.01;
};

/// \brief Streams distinct pseudo-keys from a distribution.
class KeyGenerator {
 public:
  explicit KeyGenerator(const WorkloadSpec& spec);

  /// \brief Next key, distinct from all previously returned ones.
  PseudoKey Next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  uint32_t Component(int j);

  WorkloadSpec spec_;
  Rng rng_;
  std::unordered_set<PseudoKey, PseudoKeyHash> emitted_;
  std::vector<PseudoKey> cluster_centers_;
  PseudoKey adversarial_base_;
};

/// \brief Materializes `n` distinct keys.
std::vector<PseudoKey> GenerateKeys(const WorkloadSpec& spec, uint64_t n);

/// \brief `n` distinct keys guaranteed to be absent from `present`
/// (for unsuccessful-search measurements), same distribution.
std::vector<PseudoKey> GenerateAbsentKeys(
    const WorkloadSpec& spec, uint64_t n,
    const std::vector<PseudoKey>& present);

}  // namespace workload
}  // namespace bmeh

#endif  // BMEH_WORKLOAD_DISTRIBUTIONS_H_
