#include "src/workload/distributions.h"

#include <cmath>

#include "src/common/bit_util.h"
#include "src/common/logging.h"

namespace bmeh {
namespace workload {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kNormal:
      return "normal";
    case Distribution::kClustered:
      return "clustered";
    case Distribution::kAdversarialPrefix:
      return "adversarial-prefix";
    case Distribution::kDiagonal:
      return "diagonal";
  }
  return "?";
}

KeyGenerator::KeyGenerator(const WorkloadSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  BMEH_CHECK(spec.dims >= 1 && spec.dims <= kMaxDims);
  BMEH_CHECK(spec.width >= 1 && spec.width <= 32);
  if (spec_.distribution == Distribution::kClustered) {
    for (int c = 0; c < spec_.cluster_count; ++c) {
      std::vector<uint32_t> comps(spec_.dims);
      for (int j = 0; j < spec_.dims; ++j) {
        comps[j] = static_cast<uint32_t>(
            rng_.Uniform(bit_util::Pow2(spec_.width)));
      }
      cluster_centers_.push_back(
          PseudoKey(std::span<const uint32_t>(comps.data(), spec_.dims)));
    }
  }
  if (spec_.distribution == Distribution::kAdversarialPrefix) {
    std::vector<uint32_t> comps(spec_.dims);
    for (int j = 0; j < spec_.dims; ++j) {
      comps[j] =
          static_cast<uint32_t>(rng_.Uniform(bit_util::Pow2(spec_.width)));
    }
    adversarial_base_ =
        PseudoKey(std::span<const uint32_t>(comps.data(), spec_.dims));
  }
}

uint32_t KeyGenerator::Component(int j) {
  const uint64_t domain = bit_util::Pow2(spec_.width);
  const double domain_d = static_cast<double>(domain);
  switch (spec_.distribution) {
    case Distribution::kUniform:
      return static_cast<uint32_t>(rng_.Uniform(domain));
    case Distribution::kNormal: {
      // Truncated discretized normal: resample until inside the domain.
      const double mu = spec_.normal_mean_frac * domain_d;
      const double sigma = spec_.normal_sigma_frac * domain_d;
      for (;;) {
        const double v = mu + sigma * rng_.NextGaussian();
        if (v >= 0.0 && v < domain_d) return static_cast<uint32_t>(v);
      }
    }
    case Distribution::kClustered:
    case Distribution::kDiagonal: {
      // Handled per key in Next() (components are not independent).
      BMEH_CHECK(false) << "correlated distributions handled in Next()";
      return 0;
    }
    case Distribution::kAdversarialPrefix: {
      const int free = spec_.adversarial_free_bits;
      const uint32_t low =
          static_cast<uint32_t>(rng_.Uniform(bit_util::Pow2(free)));
      const uint32_t base = adversarial_base_.component(j);
      const uint32_t mask =
          (free >= 32) ? ~uint32_t{0}
                       : static_cast<uint32_t>(bit_util::Pow2(free) - 1);
      return (base & ~mask) | low;
    }
  }
  return 0;
}

PseudoKey KeyGenerator::Next() {
  const uint64_t domain = bit_util::Pow2(spec_.width);
  for (int attempt = 0; attempt < 1 << 20; ++attempt) {
    std::vector<uint32_t> comps(spec_.dims);
    if (spec_.distribution == Distribution::kDiagonal) {
      const double noise =
          spec_.diagonal_noise_frac * static_cast<double>(domain);
      comps[0] = static_cast<uint32_t>(rng_.Uniform(domain));
      for (int j = 1; j < spec_.dims; ++j) {
        double v = static_cast<double>(comps[0]) +
                   noise * rng_.NextGaussian();
        if (v < 0.0) v = 0.0;
        if (v >= static_cast<double>(domain)) {
          v = static_cast<double>(domain) - 1.0;
        }
        comps[j] = static_cast<uint32_t>(v);
      }
    } else if (spec_.distribution == Distribution::kClustered) {
      const PseudoKey& center =
          cluster_centers_[rng_.Uniform(cluster_centers_.size())];
      const double sigma =
          spec_.cluster_sigma_frac * static_cast<double>(domain);
      for (int j = 0; j < spec_.dims; ++j) {
        double v = static_cast<double>(center.component(j)) +
                   sigma * rng_.NextGaussian();
        if (v < 0.0) v = 0.0;
        if (v >= static_cast<double>(domain)) {
          v = static_cast<double>(domain) - 1.0;
        }
        comps[j] = static_cast<uint32_t>(v);
      }
    } else {
      for (int j = 0; j < spec_.dims; ++j) comps[j] = Component(j);
    }
    PseudoKey key(std::span<const uint32_t>(comps.data(), spec_.dims));
    if (emitted_.insert(key).second) return key;
  }
  BMEH_CHECK(false) << "key space exhausted for "
                    << DistributionName(spec_.distribution);
  return PseudoKey();
}

std::vector<PseudoKey> GenerateKeys(const WorkloadSpec& spec, uint64_t n) {
  KeyGenerator gen(spec);
  std::vector<PseudoKey> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) keys.push_back(gen.Next());
  return keys;
}

std::vector<PseudoKey> GenerateAbsentKeys(
    const WorkloadSpec& spec, uint64_t n,
    const std::vector<PseudoKey>& present) {
  std::unordered_set<PseudoKey, PseudoKeyHash> taken(present.begin(),
                                                     present.end());
  WorkloadSpec absent_spec = spec;
  absent_spec.seed = spec.seed ^ 0x9e3779b97f4a7c15ull;
  KeyGenerator gen(absent_spec);
  std::vector<PseudoKey> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    PseudoKey key = gen.Next();
    if (taken.count(key) == 0) keys.push_back(key);
  }
  return keys;
}

}  // namespace workload
}  // namespace bmeh
