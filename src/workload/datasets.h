// Small embedded datasets: the paper's Table 1 example keys (used by the
// §4.3 worked-example test) and a world-cities table for the geographic
// example application.

#ifndef BMEH_WORKLOAD_DATASETS_H_
#define BMEH_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "src/encoding/pseudo_key.h"

namespace bmeh {
namespace workload {

/// \brief The 22 two-dimensional keys of the paper's Table 1
/// (4-bit first component, 3-bit second component).
std::vector<PseudoKey> PaperTable1Keys();

/// \brief A city with geographic coordinates, for the geo example.
struct City {
  std::string name;
  double lat;   // degrees, [-90, 90]
  double lon;   // degrees, [-180, 180]
  uint64_t population;
};

/// \brief A fixed table of major world cities.
const std::vector<City>& WorldCities();

}  // namespace workload
}  // namespace bmeh

#endif  // BMEH_WORKLOAD_DATASETS_H_
