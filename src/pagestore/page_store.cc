#include "src/pagestore/page_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace bmeh {

// ---------------------------------------------------------------------------
// InMemoryPageStore
// ---------------------------------------------------------------------------

InMemoryPageStore::InMemoryPageStore(int page_size) : page_size_(page_size) {
  BMEH_CHECK(page_size >= 16) << "page_size too small: " << page_size;
}

bool InMemoryPageStore::IsLive(PageId id) const {
  return id < pages_.size() && pages_[id] != nullptr;
}

Result<PageId> InMemoryPageStore::Allocate() {
  ++stats_.allocs;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id] = std::make_unique<uint8_t[]>(page_size_);
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
  }
  std::memset(pages_[id].get(), 0, page_size_);
  return id;
}

Status InMemoryPageStore::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::Invalid("Free of non-live page " + std::to_string(id));
  }
  ++stats_.frees;
  pages_[id].reset();
  free_list_.push_back(id);
  return Status::OK();
}

Status InMemoryPageStore::Read(PageId id, std::span<uint8_t> out) {
  if (!IsLive(id)) {
    return Status::IoError("Read of non-live page " + std::to_string(id));
  }
  if (out.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Read buffer size mismatch");
  }
  ++stats_.reads;
  std::memcpy(out.data(), pages_[id].get(), page_size_);
  return Status::OK();
}

Status InMemoryPageStore::Write(PageId id, std::span<const uint8_t> data) {
  if (!IsLive(id)) {
    return Status::IoError("Write of non-live page " + std::to_string(id));
  }
  if (data.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Write buffer size mismatch");
  }
  ++stats_.writes;
  std::memcpy(pages_[id].get(), data.data(), page_size_);
  return Status::OK();
}

uint64_t InMemoryPageStore::live_page_count() const {
  return pages_.size() - free_list_.size();
}

// ---------------------------------------------------------------------------
// FilePageStore
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kMagic = 0x424d4548;  // "BMEH"

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

FilePageStore::FilePageStore(int fd, int page_size)
    : fd_(fd), page_size_(page_size) {}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) {
    Status st = WriteHeader();
    if (!st.ok()) {
      BMEH_LOG(Error) << "FilePageStore header flush failed: " << st;
    }
    ::close(fd_);  // releases the flock
  }
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, int page_size) {
  if (page_size < 64) {
    return Status::Invalid("page_size too small: " + std::to_string(page_size));
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store file already open: " + path);
  }
  // Truncate only after the lock is held, so a concurrent Create cannot
  // wipe a store another handle is using.
  if (::ftruncate(fd, 0) != 0) {
    ::close(fd);
    return Status::IoError("ftruncate(" + path + "): " + std::strerror(errno));
  }
  auto store =
      std::unique_ptr<FilePageStore>(new FilePageStore(fd, page_size));
  BMEH_RETURN_NOT_OK(store->WriteHeader());
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  return OpenImpl(path, /*walk_free_chain=*/true);
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenForRecovery(
    const std::string& path) {
  return OpenImpl(path, /*walk_free_chain=*/false);
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenImpl(
    const std::string& path, bool walk_free_chain) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store file already open: " + path);
  }
  uint8_t header[64];
  ssize_t n = ::pread(fd, header, sizeof(header), 0);
  if (n != static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Status::Corruption("short read of header in " + path);
  }
  if (GetU32(header) != kMagic) {
    ::close(fd);
    return Status::Corruption("bad magic in " + path);
  }
  int page_size = static_cast<int>(GetU32(header + 4));
  auto store =
      std::unique_ptr<FilePageStore>(new FilePageStore(fd, page_size));
  store->page_count_ = GetU64(header + 8);
  store->live_count_ = GetU64(header + 16);
  store->free_head_ = GetU32(header + 24);
  if (!walk_free_chain) {
    // Recovery mode: the header itself may be stale (it is only rewritten
    // on Sync).  Pages allocated after the last sync extended the file but
    // not the header's page count, and some of them may be reachable (a
    // superblock publish can land just before the crash), so size the
    // store by the file rather than the header.  The chain may be equally
    // stale: start with nothing free; the caller adopts the real free set.
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return Status::IoError(std::string("fstat: ") + std::strerror(errno));
    }
    const uint64_t by_size =
        (static_cast<uint64_t>(st.st_size) + page_size - 1) / page_size;
    store->page_count_ = std::max(store->page_count_, std::max<uint64_t>(by_size, 1));
    store->free_head_ = kInvalidPageId;
    store->live_count_ = store->page_count_ - 1;
    return store;
  }
  // Rebuild the free-list mirror by walking the on-disk free chain; the
  // chain head is the *last* element of the mirror vector (LIFO).
  PageId cursor = store->free_head_;
  std::vector<uint8_t> buf(page_size);
  while (cursor != kInvalidPageId) {
    if (cursor >= store->page_count_ ||
        !store->free_set_.insert(cursor).second) {
      return Status::Corruption("free chain corrupt in " + path);
    }
    store->free_list_.push_back(cursor);
    BMEH_RETURN_NOT_OK(store->ReadRaw(cursor, buf));
    cursor = GetU32(buf.data());
  }
  std::reverse(store->free_list_.begin(), store->free_list_.end());
  return store;
}

Status FilePageStore::WriteHeader() {
  uint8_t header[64];
  std::memset(header, 0, sizeof(header));
  PutU32(header, kMagic);
  PutU32(header + 4, static_cast<uint32_t>(page_size_));
  PutU64(header + 8, page_count_);
  PutU64(header + 16, live_count_);
  PutU32(header + 24, free_head_);
  ssize_t n = ::pwrite(fd_, header, sizeof(header), 0);
  if (n != static_cast<ssize_t>(sizeof(header))) {
    return Status::IoError(std::string("header pwrite: ") +
                           (n < 0 ? std::strerror(errno) : "short write"));
  }
  return Status::OK();
}

Status FilePageStore::ReadRaw(PageId id, std::span<uint8_t> out) {
  off_t off = static_cast<off_t>(id) * page_size_;
  ssize_t n = ::pread(fd_, out.data(), out.size(), off);
  if (n != static_cast<ssize_t>(out.size())) {
    return Status::IoError("pread page " + std::to_string(id) + ": " +
                           (n < 0 ? std::strerror(errno) : "short read"));
  }
  return Status::OK();
}

Status FilePageStore::WriteRaw(PageId id, std::span<const uint8_t> data) {
  off_t off = static_cast<off_t>(id) * page_size_;
  ssize_t n = ::pwrite(fd_, data.data(), data.size(), off);
  if (n != static_cast<ssize_t>(data.size())) {
    return Status::IoError("pwrite page " + std::to_string(id) + ": " +
                           (n < 0 ? std::strerror(errno) : "short write"));
  }
  return Status::OK();
}

Result<PageId> FilePageStore::Allocate() {
  ++stats_.allocs;
  std::vector<uint8_t> zero(page_size_, 0);
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    // The next chain link lives in the new back of the mirror.
    free_head_ = free_list_.empty() ? kInvalidPageId : free_list_.back();
  } else {
    id = static_cast<PageId>(page_count_);
    ++page_count_;
  }
  BMEH_RETURN_NOT_OK(WriteRaw(id, zero));
  ++live_count_;
  return id;
}

Status FilePageStore::Free(PageId id) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::Invalid("Free of invalid page " + std::to_string(id));
  }
  ++stats_.frees;
  free_set_.insert(id);
  std::vector<uint8_t> buf(page_size_, 0);
  PutU32(buf.data(), free_head_);
  BMEH_RETURN_NOT_OK(WriteRaw(id, buf));
  free_list_.push_back(id);
  free_head_ = id;
  --live_count_;
  return Status::OK();
}

Status FilePageStore::AdoptFreeList(const std::vector<PageId>& pages) {
  for (PageId id : pages) {
    if (id == 0 || id >= page_count_) {
      return Status::Invalid("AdoptFreeList: invalid page " +
                             std::to_string(id));
    }
  }
  // Reset to "everything live", then free the adopted pages one by one —
  // this rewrites their chain links on disk, so a subsequent plain Open()
  // sees a coherent chain again.
  free_list_.clear();
  free_set_.clear();
  free_head_ = kInvalidPageId;
  live_count_ = page_count_ - 1;
  for (PageId id : pages) {
    BMEH_RETURN_NOT_OK(Free(id));
  }
  stats_.frees -= pages.size();  // adoption is bookkeeping, not workload
  return Status::OK();
}

Status FilePageStore::Read(PageId id, std::span<uint8_t> out) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::IoError("Read of invalid page " + std::to_string(id));
  }
  if (out.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Read buffer size mismatch");
  }
  ++stats_.reads;
  return ReadRaw(id, out);
}

Status FilePageStore::Write(PageId id, std::span<const uint8_t> data) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::IoError("Write of invalid page " + std::to_string(id));
  }
  if (data.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Write buffer size mismatch");
  }
  ++stats_.writes;
  return WriteRaw(id, data);
}

uint64_t FilePageStore::live_page_count() const { return live_count_; }

Status FilePageStore::Sync() {
  if (!sticky_sync_error_.ok()) {
    return sticky_sync_error_;
  }
  BMEH_RETURN_NOT_OK(WriteHeader());
  if (fsync_enabled_ && ::fsync(fd_) != 0) {
    sticky_sync_error_ =
        Status::IoError(std::string("fsync: ") + std::strerror(errno));
    return sticky_sync_error_;
  }
  return Status::OK();
}

void FilePageStore::CrashForTesting() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bmeh
