#include "src/pagestore/page_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <new>
#include <random>
#include <unordered_map>

#include "src/common/backoff.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"

namespace bmeh {

namespace {

// Sticky directory-fsync failure state (see SyncDirectory in the header).
// Process-wide because directory durability is a property of the path,
// not of any one PageStore instance.
std::mutex& DirSyncMutex() {
  static std::mutex m;
  return m;
}
std::unordered_map<std::string, std::string>& DirSyncFailures() {
  static auto* failures = new std::unordered_map<std::string, std::string>();
  return *failures;
}
int g_inject_dir_sync_errors = 0;

}  // namespace

Status SyncDirectory(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(DirSyncMutex());
    auto it = DirSyncFailures().find(dir);
    if (it != DirSyncFailures().end()) {
      return Status::IoError("fsync dir: " + dir + ": " + it->second +
                             " (sticky: durability of earlier entries is "
                             "unknown)");
    }
    if (g_inject_dir_sync_errors > 0) {
      --g_inject_dir_sync_errors;
      DirSyncFailures().emplace(dir, "injected failure");
      return Status::IoError("fsync dir: " + dir + ": injected failure");
    }
  }
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("open dir for fsync: " + dir + ": " +
                           std::strerror(errno));
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    const std::string reason = std::strerror(saved);
    std::lock_guard<std::mutex> lock(DirSyncMutex());
    DirSyncFailures().emplace(dir, reason);
    return Status::IoError("fsync dir: " + dir + ": " + reason);
  }
  return Status::OK();
}

void internal::InjectDirSyncErrorsForTesting(int count) {
  std::lock_guard<std::mutex> lock(DirSyncMutex());
  g_inject_dir_sync_errors = count < 0 ? 0 : count;
}

void internal::ResetStickyDirSyncErrorsForTesting() {
  std::lock_guard<std::mutex> lock(DirSyncMutex());
  DirSyncFailures().clear();
  g_inject_dir_sync_errors = 0;
}

// ---------------------------------------------------------------------------
// PageStore: reservation protocol shared by every backend
// ---------------------------------------------------------------------------

PageStore::~PageStore() {
  if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
}

void PageStore::AttachMetrics(obs::MetricsRegistry* registry,
                              std::shared_mutex* sample_guard,
                              const std::string& prefix) {
  if (metrics_ != nullptr) {
    metrics_->RemoveSource(metrics_source_);
    metrics_ = nullptr;
    metrics_source_ = 0;
  }
  if (registry == nullptr) {
    read_latency_ = nullptr;
    write_latency_ = nullptr;
    return;
  }
  read_latency_ = registry->GetHistogram("page_read_latency_ns");
  write_latency_ = registry->GetHistogram("page_write_latency_ns");
  metrics_ = registry;
  // StoreStats and the page counts are owner-synchronized plain fields,
  // so they are sampled at snapshot time rather than mirrored on every
  // operation.  `sample_guard`, when provided, is the owner's operation
  // lock — taken shared so sampling cannot race the owner's mutators.
  // `prefix` labels the sampled names (e.g. "shard3_pagestore_reads_total")
  // so devices sharing a registry — one per shard of a sharded store —
  // don't overwrite each other's sample at Snapshot() time.
  metrics_source_ = registry->AddSource(
      [this, sample_guard, prefix](obs::RegistrySnapshot* s) {
    std::shared_lock<std::shared_mutex> guard_lock;
    if (sample_guard != nullptr) {
      guard_lock = std::shared_lock<std::shared_mutex>(*sample_guard);
    }
    const StoreStats& st = stats_;
    s->counters[prefix + "pagestore_reads_total"] = st.reads;
    s->counters[prefix + "pagestore_writes_total"] = st.writes;
    s->counters[prefix + "pagestore_allocs_total"] = st.allocs;
    s->counters[prefix + "pagestore_frees_total"] = st.frees;
    s->counters[prefix + "pagestore_read_retries_total"] = st.read_retries;
    s->counters[prefix + "pagestore_checksum_failures_total"] =
        st.checksum_failures;
    s->counters[prefix + "pagestore_pages_quarantined_total"] =
        st.pages_quarantined;
    s->counters[prefix + "pagestore_alloc_failures_total"] =
        st.alloc_failures;
    s->gauges[prefix + "pagestore_live_pages"] =
        static_cast<int64_t>(live_page_count());
    s->gauges[prefix + "pagestore_total_pages"] =
        static_cast<int64_t>(total_page_count());
    s->gauges[prefix + "pagestore_high_water_pages"] =
        static_cast<int64_t>(st.high_water_pages);
    s->gauges[prefix + "pagestore_reserved_pages"] =
        static_cast<int64_t>(reserved_pages());
    s->gauges[prefix + "pagestore_max_pages"] =
        static_cast<int64_t>(max_pages());
  });
}

Status PageStore::Reserve(uint64_t n) {
  if (n == 0) return Status::OK();
  const uint64_t headroom = QuotaHeadroom();
  if (headroom != kUnlimitedHeadroom && reserved_ + n > headroom) {
    ++stats_.alloc_failures;
    return Status::ResourceExhausted(
        "cannot reserve " + std::to_string(n) + " pages: only " +
        std::to_string(headroom - std::min(reserved_, headroom)) +
        " available under the quota of " + std::to_string(max_pages_) +
        " pages");
  }
  reserved_ += n;
  return Status::OK();
}

void PageStore::ReleaseReservation(uint64_t n) {
  reserved_ -= std::min(n, reserved_);
}

Status PageStore::TakeAllocationSlot(bool* from_reservation) {
  if (reserved_ > 0) {
    --reserved_;
    *from_reservation = true;
    return Status::OK();
  }
  *from_reservation = false;
  if (QuotaHeadroom() == 0) {
    ++stats_.alloc_failures;
    return Status::ResourceExhausted(
        "page quota of " + std::to_string(max_pages_) +
        " pages exhausted");
  }
  return Status::OK();
}

void PageStore::ReturnAllocationSlot(bool from_reservation) {
  if (from_reservation) ++reserved_;
}

// ---------------------------------------------------------------------------
// InMemoryPageStore
// ---------------------------------------------------------------------------

InMemoryPageStore::InMemoryPageStore(int page_size) : page_size_(page_size) {
  BMEH_CHECK(page_size >= 16) << "page_size too small: " << page_size;
}

bool InMemoryPageStore::IsLive(PageId id) const {
  return id < pages_.size() && pages_[id] != nullptr;
}

uint64_t InMemoryPageStore::QuotaHeadroom() const {
  if (max_pages_ == 0) return kUnlimitedHeadroom;
  const uint64_t grow =
      pages_.size() >= max_pages_ ? 0 : max_pages_ - pages_.size();
  return free_list_.size() + grow;
}

Result<PageId> InMemoryPageStore::Allocate() {
  ++stats_.allocs;
  bool from_reservation = false;
  BMEH_RETURN_NOT_OK(TakeAllocationSlot(&from_reservation));
  PageId id;
  // Ordered so a bad_alloc anywhere leaves pages_ and free_list_ exactly
  // as they were (the recycled slot is only popped after its buffer
  // exists; a throwing push_back never commits the new slot).
  try {
    if (!free_list_.empty()) {
      id = free_list_.back();
      pages_[id] = std::make_unique<uint8_t[]>(page_size_);
      free_list_.pop_back();
    } else {
      id = static_cast<PageId>(pages_.size());
      pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
    }
  } catch (const std::bad_alloc&) {
    ReturnAllocationSlot(from_reservation);
    ++stats_.alloc_failures;
    return Status::ResourceExhausted("out of memory allocating a " +
                                     std::to_string(page_size_) +
                                     "-byte page");
  }
  std::memset(pages_[id].get(), 0, page_size_);
  stats_.high_water_pages =
      std::max(stats_.high_water_pages, live_page_count());
  return id;
}

Status InMemoryPageStore::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::Invalid("Free of non-live page " + std::to_string(id));
  }
  ++stats_.frees;
  pages_[id].reset();
  free_list_.push_back(id);
  return Status::OK();
}

Status InMemoryPageStore::Read(PageId id, std::span<uint8_t> out) {
  if (!IsLive(id)) {
    return Status::IoError("Read of non-live page " + std::to_string(id));
  }
  if (out.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Read buffer size mismatch");
  }
  ++stats_.reads;
  obs::ScopedLatency timer(read_latency_);
  std::memcpy(out.data(), pages_[id].get(), page_size_);
  return Status::OK();
}

Status InMemoryPageStore::Write(PageId id, std::span<const uint8_t> data) {
  if (!IsLive(id)) {
    return Status::IoError("Write of non-live page " + std::to_string(id));
  }
  if (data.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Write buffer size mismatch");
  }
  ++stats_.writes;
  obs::ScopedLatency timer(write_latency_);
  std::memcpy(pages_[id].get(), data.data(), page_size_);
  return Status::OK();
}

uint64_t InMemoryPageStore::live_page_count() const {
  return pages_.size() - free_list_.size();
}

// ---------------------------------------------------------------------------
// FilePageStore
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kMagicV1 = 0x424d4548;  // "BMEH": legacy, no trailers
constexpr uint32_t kMagicV2 = 0x32484d42;  // "BMH2": self-checksumming pages
constexpr size_t kHeaderSize = 64;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Seed binding a page's checksum to its identity and its file: the same
/// bytes at another id (misdirected write / read) or in another store
/// (stale replacement device) no longer verify.
uint32_t TrailerSeed(PageId id, uint32_t epoch) {
  return (id * 2654435761u) ^ epoch;
}

/// Errnos that mean "out of space / out of resources right now", not "the
/// device is broken": the operation may succeed verbatim once space or
/// descriptors free up.  Distinguishing them matters because callers treat
/// ResourceExhausted as retryable and IoError as poison.
bool IsExhaustionErrno(int err) {
  return err == ENOSPC || err == EDQUOT || err == ENOMEM || err == EMFILE ||
         err == ENFILE;
}

/// Classifies an errno-reported syscall failure (see IsExhaustionErrno).
/// fsync failures must NOT go through this: a failed fsync may have
/// dropped dirty pages, so it is never safe to report as transient
/// whatever its errno claims.
Status ErrnoStatus(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  return IsExhaustionErrno(err) ? Status::ResourceExhausted(msg)
                                : Status::IoError(msg);
}

/// EINTR fault injection (see internal::InjectEintrForTesting): while
/// armed, intercepted syscalls in the window fail with EINTR before
/// reaching the kernel, proving every loop below absorbs the
/// interruption.  Disarmed (the default) this is one relaxed load per
/// syscall.
std::atomic<uint64_t> g_eintr_start{UINT64_MAX};
std::atomic<uint64_t> g_eintr_count{0};
std::atomic<uint64_t> g_eintr_calls{0};
std::atomic<uint64_t> g_eintr_absorbed{0};

bool SimulateEintr() {
  const uint64_t start = g_eintr_start.load(std::memory_order_relaxed);
  if (start == UINT64_MAX) return false;
  const uint64_t k = g_eintr_calls.fetch_add(1, std::memory_order_relaxed);
  if (k < start || k >= start + g_eintr_count.load(std::memory_order_relaxed)) {
    return false;
  }
  g_eintr_absorbed.fetch_add(1, std::memory_order_relaxed);
  errno = EINTR;
  return true;
}

/// open(2) that survives EINTR — open is interruptible like any other
/// slow syscall (e.g. on a network or FUSE filesystem), and a signal
/// during open is not an I/O failure.
int OpenRetryEintr(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    if (SimulateEintr()) continue;
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// pread that survives EINTR and legal partial transfers.  POSIX allows a
/// read to return fewer bytes than requested without error; treating that
/// as failure misreports a healthy device, so loop on the remainder and
/// only report the final short count (EOF) or errno.
Status PreadFull(int fd, uint8_t* buf, size_t n, off_t off,
                 const std::string& what) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = SimulateEintr()
                          ? -1
                          : ::pread(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(what + ": " + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError(what + ": short read (" + std::to_string(done) +
                             "/" + std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

/// pwrite counterpart of PreadFull.
Status PwriteFull(int fd, const uint8_t* buf, size_t n, off_t off,
                  const std::string& what) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = SimulateEintr()
                          ? -1
                          : ::pwrite(fd, buf + done, n - done, off + done);
    if (r < 0) {
      if (errno == EINTR) continue;
      // ENOSPC/EDQUOT here is the real-disk-full path: surface it as the
      // retryable code so the layers above roll back instead of poisoning.
      return ErrnoStatus(what, errno);
    }
    if (r == 0) {
      return Status::IoError(what + ": short write (" + std::to_string(done) +
                             "/" + std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint32_t FreshEpoch() {
  std::random_device rd;
  uint32_t e = static_cast<uint32_t>(rd()) ^ (static_cast<uint32_t>(rd()) << 1);
  return e != 0 ? e : 0x9e3779b9u;
}

}  // namespace

namespace internal {

void InjectEintrForTesting(uint64_t nth, uint64_t count) {
  g_eintr_start.store(UINT64_MAX, std::memory_order_relaxed);  // disarm first
  g_eintr_calls.store(0, std::memory_order_relaxed);
  g_eintr_count.store(count, std::memory_order_relaxed);
  g_eintr_start.store(nth, std::memory_order_relaxed);
}

uint64_t EintrRetriesForTesting() {
  return g_eintr_absorbed.load(std::memory_order_relaxed);
}

}  // namespace internal

FilePageStore::FilePageStore(int fd, int page_size, int format_version,
                             uint32_t epoch)
    : fd_(fd),
      page_size_(page_size),
      format_version_(format_version),
      epoch_(epoch) {}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) {
    Status st = WriteHeader();
    if (!st.ok()) {
      BMEH_LOG(Error) << "FilePageStore header flush failed: " << st;
    }
    ::close(fd_);  // releases the flock
  }
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, int page_size) {
  if (page_size < 64) {
    return Status::Invalid("page_size too small: " + std::to_string(page_size));
  }
  int fd = OpenRetryEintr(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return ErrnoStatus("open(" + path + ")", errno);
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store file already open: " + path);
  }
  // Truncate only after the lock is held, so a concurrent Create cannot
  // wipe a store another handle is using.
  if (::ftruncate(fd, 0) != 0) {
    ::close(fd);
    return ErrnoStatus("ftruncate(" + path + ")", errno);
  }
  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, page_size, /*format_version=*/2, FreshEpoch()));
  BMEH_RETURN_NOT_OK(store->WriteHeader());
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  return OpenImpl(path, /*walk_free_chain=*/true);
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenForRecovery(
    const std::string& path) {
  return OpenImpl(path, /*walk_free_chain=*/false);
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenIgnoringHeader(
    const std::string& path, int page_size) {
  if (page_size < 64) {
    return Status::Invalid("page_size too small: " + std::to_string(page_size));
  }
  int fd = OpenRetryEintr(path.c_str(), O_RDWR);
  if (fd < 0) {
    return ErrnoStatus("open(" + path + ")", errno);
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store file already open: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(std::string("fstat: ") + std::strerror(errno));
  }
  const uint64_t physical =
      static_cast<uint64_t>(page_size) + kPageTrailerSize;
  const uint64_t page_count = std::max<uint64_t>(
      (static_cast<uint64_t>(st.st_size) + physical - 1) / physical, 1);
  // Recover the epoch: a trailer whose CRC verifies under its own claimed
  // epoch at its own offset was written by this store for this slot — a
  // forged match would need a preimage of the seeded CRC.
  std::vector<uint8_t> phys(physical);
  bool found = false;
  uint32_t epoch = 0;
  for (PageId id = 1; id < page_count && !found; ++id) {
    const off_t off = static_cast<off_t>(id) * physical;
    if (!PreadFull(fd, phys.data(), phys.size(), off, "pread").ok()) continue;
    const uint8_t* t = phys.data() + page_size;
    if (t[0] != kPageFormatV2 || GetU32(t + 4) != id) continue;
    const uint32_t claimed = GetU32(t + 8);
    if (GetU32(t + 12) == Crc32(phys.data(), page_size + 12,
                                TrailerSeed(id, claimed))) {
      epoch = claimed;
      found = true;
    }
  }
  if (!found) {
    ::close(fd);
    return Status::DataLoss(
        "no self-consistent page trailer in " + path +
        "; cannot recover the store epoch (wrong page size, v1 file, or "
        "total corruption)");
  }
  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, page_size, /*format_version=*/2, epoch));
  store->page_count_ = page_count;
  store->live_count_ = page_count - 1;
  store->free_head_ = kInvalidPageId;
  store->header_damaged_ = true;  // by assumption: that is why we are here
  store->stats_.high_water_pages = store->live_count_;
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenImpl(
    const std::string& path, bool walk_free_chain) {
  int fd = OpenRetryEintr(path.c_str(), O_RDWR);
  if (fd < 0) {
    return ErrnoStatus("open(" + path + ")", errno);
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::IoError("store file already open: " + path);
  }
  uint8_t header[kHeaderSize];
  Status hst = PreadFull(fd, header, sizeof(header), 0, "header pread");
  if (!hst.ok()) {
    ::close(fd);
    return Status::Corruption("short read of header in " + path);
  }
  const uint32_t magic = GetU32(header);
  if (magic != kMagicV1 && magic != kMagicV2) {
    ::close(fd);
    return Status::Corruption("bad magic in " + path);
  }
  const int version = magic == kMagicV2 ? 2 : 1;
  const int page_size = static_cast<int>(GetU32(header + 4));
  if (page_size < 64 || page_size > (1 << 24)) {
    ::close(fd);
    return Status::DataLoss("implausible page size " +
                            std::to_string(page_size) + " in header of " +
                            path + " (header corrupt?)");
  }
  const uint32_t epoch = version >= 2 ? GetU32(header + 28) : 0;
  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, page_size, version, epoch));
  store->page_count_ = GetU64(header + 8);
  store->live_count_ = GetU64(header + 16);
  store->free_head_ = GetU32(header + 24);
  // A failed Open must leave the file byte-identical: the destructor's
  // header flush would otherwise overwrite the (possibly corrupt, but
  // evidentiary) header page with a freshly-checksummed copy — healing in
  // the best case, laundering garbage fields under a valid trailer in the
  // worst.  Drop the fd without the flush on every rejection path.
  const auto reject = [&store](Status st) {
    ::close(store->fd_);
    store->fd_ = -1;
    return st;
  };
  if (version >= 2) {
    // Verify the whole header page against its trailer.  A recovery open
    // tolerates a damaged header (every field it relies on is recomputed
    // below, and the next Sync rewrites the page, healing it); a plain
    // open refuses — its free-chain walk trusts header state.
    std::vector<uint8_t> page0(store->physical_page_size());
    Status vst = PreadFull(fd, page0.data(), page0.size(), 0, "page 0 pread");
    if (vst.ok()) vst = store->CheckTrailer(0, page0);
    if (!vst.ok()) {
      ++store->stats_.checksum_failures;
      if (walk_free_chain) {
        return reject(
            Status::DataLoss("header page of " + path +
                             " failed verification: " + vst.message()));
      }
      store->header_damaged_ = true;
    }
  }
  if (!walk_free_chain) {
    // Recovery mode: the header itself may be stale (it is only rewritten
    // on Sync).  Pages allocated after the last sync extended the file but
    // not the header's page count, and some of them may be reachable (a
    // superblock publish can land just before the crash), so size the
    // store by the file rather than the header.  The chain may be equally
    // stale: start with nothing free; the caller adopts the real free set.
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return reject(
          Status::IoError(std::string("fstat: ") + std::strerror(errno)));
    }
    const uint64_t phys =
        static_cast<uint64_t>(store->physical_page_size());
    const uint64_t by_size =
        (static_cast<uint64_t>(st.st_size) + phys - 1) / phys;
    if (store->header_damaged_) {
      // A damaged header's page count is noise; the file size is ground
      // truth.
      store->page_count_ = std::max<uint64_t>(by_size, 1);
    } else {
      store->page_count_ =
          std::max(store->page_count_, std::max<uint64_t>(by_size, 1));
    }
    store->free_head_ = kInvalidPageId;
    store->live_count_ = store->page_count_ - 1;
    store->stats_.high_water_pages = store->live_count_;
    return store;
  }
  // Rebuild the free-list mirror by walking the on-disk free chain; the
  // chain head is the *last* element of the mirror vector (LIFO).
  PageId cursor = store->free_head_;
  std::vector<uint8_t> buf(page_size);
  while (cursor != kInvalidPageId) {
    if (cursor >= store->page_count_ ||
        !store->free_set_.insert(cursor).second) {
      return reject(Status::Corruption("free chain corrupt in " + path));
    }
    store->free_list_.push_back(cursor);
    Status rst = store->ReadRaw(cursor, buf);
    if (!rst.ok()) return reject(rst);
    cursor = GetU32(buf.data());
  }
  std::reverse(store->free_list_.begin(), store->free_list_.end());
  // The handle's high-water mark starts at the file's current live count.
  store->stats_.high_water_pages = store->live_count_;
  return store;
}

Status FilePageStore::WriteHeader() {
  if (format_version_ < 2) {
    // Legacy store: keep the legacy header layout (and no trailer — v1
    // page offsets leave no room for one).
    uint8_t header[kHeaderSize];
    std::memset(header, 0, sizeof(header));
    PutU32(header, kMagicV1);
    PutU32(header + 4, static_cast<uint32_t>(page_size_));
    PutU64(header + 8, page_count_);
    PutU64(header + 16, live_count_);
    PutU32(header + 24, free_head_);
    return PwriteFull(fd_, header, sizeof(header), 0, "header pwrite");
  }
  // v2: the whole physical page 0 is written (zero padded) so its trailer
  // covers every byte — a flip anywhere in the header page is detectable.
  std::vector<uint8_t> page0(physical_page_size(), 0);
  PutU32(page0.data(), kMagicV2);
  PutU32(page0.data() + 4, static_cast<uint32_t>(page_size_));
  PutU64(page0.data() + 8, page_count_);
  PutU64(page0.data() + 16, live_count_);
  PutU32(page0.data() + 24, free_head_);
  PutU32(page0.data() + 28, epoch_);
  FillTrailer(0, page0);
  BMEH_RETURN_NOT_OK(PwriteFull(fd_, page0.data(), page0.size(), 0,
                                "header pwrite"));
  header_damaged_ = false;
  return Status::OK();
}

void FilePageStore::FillTrailer(PageId id, std::span<uint8_t> physical) const {
  uint8_t* t = physical.data() + page_size_;
  std::memset(t, 0, kPageTrailerSize);
  t[0] = kPageFormatV2;
  PutU32(t + 4, id);
  PutU32(t + 8, epoch_);
  const uint32_t crc = Crc32(physical.data(), page_size_ + 12,
                             TrailerSeed(id, epoch_));
  PutU32(t + 12, crc);
}

Status FilePageStore::CheckTrailer(PageId id,
                                   std::span<const uint8_t> physical) const {
  const uint8_t* t = physical.data() + page_size_;
  const std::string where = "page " + std::to_string(id);
  if (t[0] != kPageFormatV2) {
    return Status::DataLoss(where + ": bad trailer version byte " +
                            std::to_string(t[0]));
  }
  if (GetU32(t + 4) != id) {
    return Status::DataLoss(where + ": trailer claims page " +
                            std::to_string(GetU32(t + 4)) +
                            " (misdirected I/O?)");
  }
  if (GetU32(t + 8) != epoch_) {
    return Status::DataLoss(where + ": trailer from foreign store epoch");
  }
  const uint32_t want = Crc32(physical.data(), page_size_ + 12,
                              TrailerSeed(id, epoch_));
  if (GetU32(t + 12) != want) {
    return Status::DataLoss(where + ": checksum mismatch");
  }
  return Status::OK();
}

Status FilePageStore::ReadPhysicalOnce(PageId id,
                                       std::span<uint8_t> physical) {
  if (inject_read_errors_ > 0) {
    --inject_read_errors_;
    return Status::IoError("injected transient pread error on page " +
                           std::to_string(id));
  }
  const off_t off = static_cast<off_t>(id) * physical_page_size();
  BMEH_RETURN_NOT_OK(PreadFull(fd_, physical.data(), physical.size(), off,
                               "pread page " + std::to_string(id)));
  if (inject_read_corruptions_ > 0) {
    --inject_read_corruptions_;
    physical[physical.size() / 3] ^= 0x40;
  }
  if (format_version_ >= 2) {
    Status st = CheckTrailer(id, physical);
    if (!st.ok()) {
      ++stats_.checksum_failures;
      return st;
    }
  }
  return Status::OK();
}

Status FilePageStore::ReadRaw(PageId id, std::span<uint8_t> out) {
  if (format_version_ < 2) {
    // Legacy pages carry no trailer: a single direct read, no
    // verification possible.
    const off_t off = static_cast<off_t>(id) * physical_page_size();
    return PreadFull(fd_, out.data(), out.size(), off,
                     "pread page " + std::to_string(id));
  }
  std::vector<uint8_t> physical(physical_page_size());
  Status st;
  for (int attempt = 0; attempt <= max_read_retries_; ++attempt) {
    if (attempt > 0) {
      ++stats_.read_retries;
      if (retry_backoff_us_ > 0) {
        SleepUs(static_cast<uint64_t>(retry_backoff_us_) << (attempt - 1));
      }
    }
    st = ReadPhysicalOnce(id, physical);
    if (st.ok()) {
      std::memcpy(out.data(), physical.data(), out.size());
      return Status::OK();
    }
    // Both failure modes are worth a re-read: transient EIO obviously,
    // and a checksum mismatch because the first read may have raced a
    // concurrent write (a torn read) or hit a transient transfer error —
    // only corruption at rest fails every attempt.
  }
  if (st.IsIoError()) {
    return Status::IoError("page " + std::to_string(id) + " unreadable after " +
                           std::to_string(max_read_retries_ + 1) +
                           " attempts: " + st.message());
  }
  return Status::DataLoss("page " + std::to_string(id) +
                          " failed verification after " +
                          std::to_string(max_read_retries_ + 1) +
                          " attempts: " + st.message());
}

Status FilePageStore::WriteRaw(PageId id, std::span<const uint8_t> data) {
  const off_t off = static_cast<off_t>(id) * physical_page_size();
  if (format_version_ < 2) {
    return PwriteFull(fd_, data.data(), data.size(), off,
                      "pwrite page " + std::to_string(id));
  }
  std::vector<uint8_t> physical(physical_page_size());
  std::memcpy(physical.data(), data.data(), data.size());
  FillTrailer(id, physical);
  return PwriteFull(fd_, physical.data(), physical.size(), off,
                    "pwrite page " + std::to_string(id));
}

Status FilePageStore::VerifyPage(PageId id) {
  if (id >= page_count_) {
    return Status::Invalid("VerifyPage: no page " + std::to_string(id));
  }
  std::vector<uint8_t> physical(physical_page_size());
  return ReadPhysicalOnce(id, physical);
}

uint64_t FilePageStore::QuotaHeadroom() const {
  if (max_pages_ == 0) return kUnlimitedHeadroom;
  const uint64_t grow =
      page_count_ >= max_pages_ ? 0 : max_pages_ - page_count_;
  return free_list_.size() + grow;
}

Result<PageId> FilePageStore::Allocate() {
  ++stats_.allocs;
  bool from_reservation = false;
  BMEH_RETURN_NOT_OK(TakeAllocationSlot(&from_reservation));
  std::vector<uint8_t> zero(page_size_, 0);
  PageId id;
  const bool grew = free_list_.empty();
  if (!grew) {
    id = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(id);
    // The next chain link lives in the new back of the mirror.
    free_head_ = free_list_.empty() ? kInvalidPageId : free_list_.back();
  } else {
    id = static_cast<PageId>(page_count_);
    ++page_count_;
  }
  Status wst = WriteRaw(id, zero);
  if (!wst.ok()) {
    // Roll back every bookkeeping effect so a failed allocation (the real
    // ENOSPC path) leaves the store exactly as before the call.
    if (grew) {
      --page_count_;
      // The failed pwrite may have extended the file with a partial page;
      // trim it so recovery opens (which size the store by st_size) never
      // see a garbage page past the logical end.
      if (::ftruncate(fd_, static_cast<off_t>(page_count_) *
                               physical_page_size()) != 0) {
        BMEH_LOG(Warning) << "could not trim partially allocated page "
                          << id << ": " << std::strerror(errno);
      }
    } else {
      free_list_.push_back(id);
      free_set_.insert(id);
      free_head_ = id;
    }
    ReturnAllocationSlot(from_reservation);
    ++stats_.alloc_failures;
    return wst;
  }
  ++live_count_;
  stats_.high_water_pages = std::max(stats_.high_water_pages, live_count_);
  return id;
}

Status FilePageStore::Free(PageId id) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::Invalid("Free of invalid page " + std::to_string(id));
  }
  ++stats_.frees;
  std::vector<uint8_t> buf(page_size_, 0);
  PutU32(buf.data(), free_head_);
  Status wst = WriteRaw(id, buf);
  if (!wst.ok()) {
    // The chain link never hit the disk: keep the page live so the
    // free-list mirror and the file stay consistent.
    --stats_.frees;
    return wst;
  }
  free_set_.insert(id);
  free_list_.push_back(id);
  free_head_ = id;
  --live_count_;
  return Status::OK();
}

Status FilePageStore::AdoptFreeList(const std::vector<PageId>& pages) {
  for (PageId id : pages) {
    if (id == 0 || id >= page_count_) {
      return Status::Invalid("AdoptFreeList: invalid page " +
                             std::to_string(id));
    }
  }
  // Reset to "everything live", then free the adopted pages one by one —
  // this rewrites their chain links on disk, so a subsequent plain Open()
  // sees a coherent chain again.
  free_list_.clear();
  free_set_.clear();
  free_head_ = kInvalidPageId;
  live_count_ = page_count_ - 1;
  for (PageId id : pages) {
    BMEH_RETURN_NOT_OK(Free(id));
  }
  stats_.frees -= pages.size();  // adoption is bookkeeping, not workload
  return Status::OK();
}

Status FilePageStore::Read(PageId id, std::span<uint8_t> out) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::IoError("Read of invalid page " + std::to_string(id));
  }
  if (out.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Read buffer size mismatch");
  }
  ++stats_.reads;
  obs::ScopedLatency timer(read_latency_);
  return ReadRaw(id, out);
}

Status FilePageStore::Write(PageId id, std::span<const uint8_t> data) {
  if (id == 0 || id >= page_count_ || free_set_.count(id) != 0) {
    return Status::IoError("Write of invalid page " + std::to_string(id));
  }
  if (data.size() != static_cast<size_t>(page_size_)) {
    return Status::Invalid("Write buffer size mismatch");
  }
  ++stats_.writes;
  obs::ScopedLatency timer(write_latency_);
  return WriteRaw(id, data);
}

uint64_t FilePageStore::live_page_count() const { return live_count_; }

Status FilePageStore::Sync() {
  if (!sticky_sync_error_.ok()) {
    return sticky_sync_error_;
  }
  BMEH_RETURN_NOT_OK(WriteHeader());
  if (fsync_enabled_ && ::fsync(fd_) != 0) {
    sticky_sync_error_ =
        Status::IoError(std::string("fsync: ") + std::strerror(errno));
    return sticky_sync_error_;
  }
  return Status::OK();
}

void FilePageStore::CrashForTesting() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bmeh
