// Page identifiers and constants for the paged storage substrate.

#ifndef BMEH_PAGESTORE_PAGE_H_
#define BMEH_PAGESTORE_PAGE_H_

#include <cstdint>

namespace bmeh {

/// \brief Identifier of a page inside a PageStore.
using PageId = uint32_t;

/// \brief Sentinel for "no page" (the paper's NIL pointer).
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// \brief Default on-disk page size in bytes.
inline constexpr int kDefaultPageSize = 4096;

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_PAGE_H_
