#include "src/pagestore/data_page.h"

#include <cstring>

namespace bmeh {

int DataPage::Find(const PseudoKey& key) const {
  for (int i = 0; i < size(); ++i) {
    if (records_[i].key == key) return i;
  }
  return -1;
}

Status DataPage::Insert(const Record& rec) {
  if (Contains(rec.key)) {
    return Status::AlreadyExists("key " + rec.key.ToString() +
                                 " already in page " + std::to_string(id_));
  }
  if (full()) {
    return Status::CapacityError("page " + std::to_string(id_) + " is full");
  }
  records_.push_back(rec);
  return Status::OK();
}

Status DataPage::Remove(const PseudoKey& key) {
  int i = Find(key);
  if (i < 0) {
    return Status::KeyError("key " + key.ToString() + " not in page " +
                            std::to_string(id_));
  }
  records_[i] = records_.back();
  records_.pop_back();
  return Status::OK();
}

std::optional<uint64_t> DataPage::Lookup(const PseudoKey& key) const {
  int i = Find(key);
  if (i < 0) return std::nullopt;
  return records_[i].payload;
}

void DataPage::Partition(const std::function<bool(const Record&)>& goes_right,
                         DataPage* right) {
  size_t w = 0;
  for (size_t r = 0; r < records_.size(); ++r) {
    if (goes_right(records_[r])) {
      BMEH_CHECK(!right->full()) << "partition target overflow";
      right->records_.push_back(records_[r]);
    } else {
      records_[w++] = records_[r];
    }
  }
  records_.resize(w);
}

int DataPage::SerializedSize(int capacity, int dims) {
  // count (4) + capacity * (dims * 4 key bytes + 8 payload bytes)
  return 4 + capacity * (dims * 4 + 8);
}

void DataPage::Serialize(int dims, std::span<uint8_t> out) const {
  BMEH_CHECK(out.size() >=
             static_cast<size_t>(SerializedSize(capacity_, dims)));
  uint8_t* p = out.data();
  uint32_t n = static_cast<uint32_t>(records_.size());
  std::memcpy(p, &n, 4);
  p += 4;
  for (const Record& rec : records_) {
    BMEH_DCHECK(rec.key.dims() == dims);
    for (int j = 0; j < dims; ++j) {
      uint32_t c = rec.key.component(j);
      std::memcpy(p, &c, 4);
      p += 4;
    }
    std::memcpy(p, &rec.payload, 8);
    p += 8;
  }
}

Result<DataPage> DataPage::Deserialize(PageId id, int capacity, int dims,
                                       std::span<const uint8_t> in) {
  if (in.size() < static_cast<size_t>(SerializedSize(capacity, dims))) {
    return Status::Corruption("data page buffer too small");
  }
  const uint8_t* p = in.data();
  uint32_t n;
  std::memcpy(&n, p, 4);
  p += 4;
  if (n > static_cast<uint32_t>(capacity)) {
    return Status::Corruption("data page record count " + std::to_string(n) +
                              " exceeds capacity " + std::to_string(capacity));
  }
  DataPage page(id, capacity);
  for (uint32_t i = 0; i < n; ++i) {
    std::array<uint32_t, kMaxDims> comps{};
    for (int j = 0; j < dims; ++j) {
      std::memcpy(&comps[j], p, 4);
      p += 4;
    }
    Record rec;
    rec.key = PseudoKey(std::span<const uint32_t>(comps.data(), dims));
    std::memcpy(&rec.payload, p, 8);
    p += 8;
    page.records_.push_back(rec);
  }
  return page;
}

}  // namespace bmeh
