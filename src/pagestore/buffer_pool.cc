#include "src/pagestore/buffer_pool.h"

#include <cstring>

#include "src/common/logging.h"

namespace bmeh {

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), id_(other.id_) {
  other.pool_ = nullptr;
  other.id_ = kInvalidPageId;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

std::span<uint8_t> PageHandle::data() {
  BMEH_CHECK(valid());
  auto it = pool_->frames_.find(id_);
  BMEH_CHECK(it != pool_->frames_.end());
  return {it->second.data.get(), static_cast<size_t>(pool_->store_->page_size())};
}

std::span<const uint8_t> PageHandle::data() const {
  BMEH_CHECK(valid());
  auto it = pool_->frames_.find(id_);
  BMEH_CHECK(it != pool_->frames_.end());
  return {it->second.data.get(), static_cast<size_t>(pool_->store_->page_size())};
}

void PageHandle::MarkDirty() {
  BMEH_CHECK(valid());
  pool_->frames_.at(id_).dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    id_ = kInvalidPageId;
  }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

BufferPool::BufferPool(PageStore* store, int capacity)
    : store_(store), capacity_(capacity) {
  BMEH_CHECK(store != nullptr);
  BMEH_CHECK(capacity >= 1);
}

BufferPool::~BufferPool() {
  if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
  Status st = FlushAll();
  if (!st.ok()) {
    BMEH_LOG(Error) << "BufferPool final flush failed: " << st;
  }
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* registry) {
  if (metrics_ != nullptr) {
    metrics_->RemoveSource(metrics_source_);
    metrics_ = nullptr;
    metrics_source_ = 0;
  }
  if (registry == nullptr) return;
  metrics_ = registry;
  metrics_source_ = registry->AddSource([this](obs::RegistrySnapshot* s) {
    s->counters["bufferpool_hits_total"] = hits();
    s->counters["bufferpool_misses_total"] = misses();
    s->counters["bufferpool_evictions_total"] = evictions();
    s->gauges["bufferpool_hit_rate_ppm"] =
        static_cast<int64_t>(hit_rate() * 1e6);
  });
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return PageHandle(this, id);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  while (frames_.size() >= static_cast<size_t>(capacity_)) {
    BMEH_RETURN_NOT_OK(EvictOne());
  }
  Frame f;
  f.data = std::make_unique<uint8_t[]>(store_->page_size());
  BMEH_RETURN_NOT_OK(store_->Read(
      id, {f.data.get(), static_cast<size_t>(store_->page_size())}));
  f.pins = 1;
  frames_.emplace(id, std::move(f));
  return PageHandle(this, id);
}

Result<PageHandle> BufferPool::New() {
  BMEH_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  while (frames_.size() >= static_cast<size_t>(capacity_)) {
    BMEH_RETURN_NOT_OK(EvictOne());
  }
  Frame f;
  f.data = std::make_unique<uint8_t[]>(store_->page_size());
  std::memset(f.data.get(), 0, store_->page_size());
  f.pins = 1;
  f.dirty = true;
  frames_.emplace(id, std::move(f));
  return PageHandle(this, id);
}

Status BufferPool::Delete(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.pins > 0) {
      return Status::Invalid("Delete of pinned page " + std::to_string(id));
    }
    if (it->second.in_lru) lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
  return store_->Free(id);
}

Status BufferPool::FlushAll() {
  for (auto& [id, f] : frames_) {
    if (f.dirty) {
      BMEH_RETURN_NOT_OK(store_->Write(
          id, {f.data.get(), static_cast<size_t>(store_->page_size())}));
      f.dirty = false;
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  BMEH_CHECK(it != frames_.end()) << "Unpin of unknown page " << id;
  Frame& f = it->second;
  BMEH_CHECK(f.pins > 0);
  if (--f.pins == 0) {
    lru_.push_back(id);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::CapacityError(
        "buffer pool exhausted: all frames pinned (capacity " +
        std::to_string(capacity_) + ")");
  }
  PageId victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  BMEH_CHECK(it != frames_.end());
  Frame& f = it->second;
  BMEH_CHECK(f.pins == 0);
  if (f.dirty) {
    BMEH_RETURN_NOT_OK(store_->Write(
        victim, {f.data.get(), static_cast<size_t>(store_->page_size())}));
  }
  frames_.erase(it);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace bmeh
