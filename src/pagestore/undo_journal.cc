#include "src/pagestore/undo_journal.h"

#include "src/common/logging.h"

namespace bmeh {

PageOpJournal::~PageOpJournal() {
  Status st = RollbackNow();
  if (!st.ok()) {
    BMEH_LOG(Error) << "page-op rollback failed (pages leaked until the "
                       "next recovery open): " << st;
  }
}

Status PageOpJournal::Reserve(uint64_t n) {
  BMEH_RETURN_NOT_OK(store_->Reserve(n));
  reserved_ += n;
  return Status::OK();
}

Result<PageId> PageOpJournal::Allocate() {
  BMEH_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  // The store consumes an outstanding reserved slot before checking the
  // quota, so a successful allocation under this journal used one of ours
  // when we held any.
  if (reserved_ > 0) --reserved_;
  allocated_.push_back(id);
  return id;
}

Status PageOpJournal::GuardedWrite(PageId id, std::span<const uint8_t> data,
                                   std::span<const uint8_t> before) {
  snapshots_.push_back({id, {before.begin(), before.end()}});
  Status st = store_->Write(id, data);
  if (st.ok()) return st;
  // The write was dropped cleanly (a failed pwrite of an existing page
  // does not tear it in our fault model, and a real torn sector is the
  // crash path, not this one) — nothing to restore.
  snapshots_.pop_back();
  return st;
}

void PageOpJournal::Commit() {
  if (done_) return;
  done_ = true;
  allocated_.clear();
  snapshots_.clear();
  if (reserved_ > 0) {
    store_->ReleaseReservation(reserved_);
    reserved_ = 0;
  }
}

Status PageOpJournal::RollbackNow() {
  if (done_) return Status::OK();
  done_ = true;
  Status first_error;
  // Newest first: restore overwritten bytes, then return allocations.
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    Status st = store_->Write(it->id, it->bytes);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  snapshots_.clear();
  for (auto it = allocated_.rbegin(); it != allocated_.rend(); ++it) {
    Status st = store_->Free(*it);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  allocated_.clear();
  if (reserved_ > 0) {
    store_->ReleaseReservation(reserved_);
    reserved_ = 0;
  }
  if (!first_error.ok()) {
    // Escalate to a non-transient code: the store's state is no longer
    // the pre-operation one, so "just retry" would be a lie.
    return Status::IoError("undo-journal rollback failed: " +
                           first_error.ToString());
  }
  return Status::OK();
}

}  // namespace bmeh
