// DataPage: a bucket of at most b records.
//
// The paper's data pages hold up to b records; pages split when the
// (b+1)-st record arrives.  The experiments treat a data page as one disk
// block regardless of b (b is the paper's independent variable).  DataPage
// also knows how to serialize itself into a raw page for persistence.

#ifndef BMEH_PAGESTORE_DATA_PAGE_H_
#define BMEH_PAGESTORE_DATA_PAGE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/encoding/pseudo_key.h"
#include "src/pagestore/page.h"

namespace bmeh {

/// \brief A stored record: pseudo-key plus opaque payload (e.g. a RID).
struct Record {
  PseudoKey key;
  uint64_t payload = 0;

  bool operator==(const Record& other) const {
    return key == other.key && payload == other.payload;
  }
};

/// \brief In-memory data page of capacity b.
class DataPage {
 public:
  DataPage(PageId id, int capacity) : id_(id), capacity_(capacity) {
    BMEH_DCHECK(capacity >= 1);
    records_.reserve(capacity);
  }

  PageId id() const { return id_; }
  int capacity() const { return capacity_; }
  int size() const { return static_cast<int>(records_.size()); }
  bool full() const { return size() >= capacity_; }
  bool empty() const { return records_.empty(); }

  const std::vector<Record>& records() const { return records_; }

  /// \brief Index of the record with `key`, or -1.
  int Find(const PseudoKey& key) const;

  bool Contains(const PseudoKey& key) const { return Find(key) >= 0; }

  /// \brief Inserts a record.  Fails with AlreadyExists on a duplicate key
  /// and CapacityError when the page is full.
  Status Insert(const Record& rec);

  /// \brief Removes the record with `key`; KeyError if absent.
  Status Remove(const PseudoKey& key);

  /// \brief Payload of the record with `key`, if present.
  std::optional<uint64_t> Lookup(const PseudoKey& key) const;

  /// \brief Moves every record for which `goes_right` is true into `right`.
  /// Used by page splits; `right` must have enough free capacity.
  void Partition(const std::function<bool(const Record&)>& goes_right,
                 DataPage* right);

  /// \brief Removes all records.
  void Clear() { records_.clear(); }

  /// \brief Bytes needed to serialize a page of `capacity` records with
  /// `dims`-dimensional keys.
  static int SerializedSize(int capacity, int dims);

  /// \brief Serializes into `out` (size >= SerializedSize).
  void Serialize(int dims, std::span<uint8_t> out) const;

  /// \brief Reconstructs a page from serialized bytes.
  static Result<DataPage> Deserialize(PageId id, int capacity, int dims,
                                      std::span<const uint8_t> in);

 private:
  PageId id_;
  int capacity_;
  std::vector<Record> records_;
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_DATA_PAGE_H_
