// FaultInjectingPageStore: a PageStore decorator that injects disk faults
// on demand — the test harness for every crash-recovery guarantee the
// store layer makes.
//
// Fault model:
//  * Scheduled crash: the Nth Write() (or Sync()) fails and the device
//    goes down — every later operation returns IoError until Heal().
//    The failing write can be clean (nothing reaches the inner store) or
//    torn (the first half of the page is written, the rest keeps its old
//    bytes) — the two ways a real power cut leaves a sector.
//  * Probabilistic transient errors: each Read/Write independently fails
//    with a configured probability, driven by the deterministic Rng from
//    src/common/random.h so failing schedules are reproducible.
//  * Deterministic read corruption: the Nth Read() can be served with one
//    byte flipped (bit rot), with the page's content as of an earlier
//    write (stale-sector replay), or with another page's content
//    (misdirected read) — the three ways a disk lies without erroring.
//    These never take the device down; they test that the layers above
//    *detect* bad bytes instead of consuming them.
//  * Scheduled transient read errors: the Nth Read() fails with IoError
//    `count` times in a row without taking the device down — the shape of
//    a transient fault a bounded retry loop should absorb.
//  * Allocation faults: a hard quota (every allocation from index n on
//    fails with ResourceExhausted until the limit is lifted — disk full),
//    or a transient ENOSPC window (allocations [n, n+count) fail, later
//    ones succeed).  The device stays up: exhaustion is not a crash, and
//    the layers above must roll back and stay serviceable.
//
// The decorator counts operations, which is what lets a crash-matrix test
// enumerate "kill at write index w for every w" exhaustively — and, for
// allocation faults, "exhaust at allocation index a for every a".

#ifndef BMEH_PAGESTORE_FAULT_INJECTING_PAGE_STORE_H_
#define BMEH_PAGESTORE_FAULT_INJECTING_PAGE_STORE_H_

#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Deterministic disk-fault injection around any PageStore.
class FaultInjectingPageStore : public PageStore {
 public:
  /// \brief How a scheduled write fault manifests.
  enum class WriteFault {
    kError,  ///< The write is dropped entirely.
    kTorn,   ///< The first half of the page hits the device, then failure.
  };

  /// \brief Takes ownership of `inner`.  The inner store stays reachable
  /// through inner() for backend-specific calls (e.g.
  /// FilePageStore::CrashForTesting).
  explicit FaultInjectingPageStore(std::unique_ptr<PageStore> inner)
      : inner_(std::move(inner)), rng_(0) {}

  PageStore* inner() { return inner_.get(); }

  /// \brief Schedules the write with 0-based index `n` (counted across the
  /// decorator's lifetime) to fail as `fault`, taking the device down.
  void FailNthWrite(uint64_t n, WriteFault fault = WriteFault::kError) {
    fail_write_at_ = n;
    write_fault_ = fault;
  }

  /// \brief Schedules the 0-based Nth Sync() to fail and take the device
  /// down (models an fsync error / power cut during flush).
  void FailNthSync(uint64_t n) { fail_sync_at_ = n; }

  /// \brief Enables transient random faults with the given per-operation
  /// probabilities (no down state; each failure is independent).
  void SetTransientFaults(double write_error_p, double read_error_p,
                          uint64_t seed) {
    write_error_p_ = write_error_p;
    read_error_p_ = read_error_p;
    rng_ = Rng(seed);
  }

  /// \brief Schedules reads with 0-based indexes [n, n + count) to fail
  /// with a transient IoError — the device stays up and later reads of
  /// the same page succeed, so a retrying reader recovers.
  void FailNthRead(uint64_t n, uint64_t count = 1) {
    fail_read_at_ = n;
    fail_read_count_ = count;
  }

  /// \brief Schedules the 0-based Nth Read() to be served with the byte
  /// at `byte_index` (modulo page size) XOR-flipped — silent bit rot.
  /// The inner store's bytes are untouched; only this read lies.
  void CorruptNthRead(uint64_t n, size_t byte_index, uint8_t mask = 0x01) {
    corrupt_read_at_ = n;
    corrupt_byte_index_ = byte_index;
    corrupt_mask_ = mask == 0 ? 0x01 : mask;
  }

  /// \brief Schedules the 0-based Nth Read() to replay the content the
  /// page held before its most recent Write — a stale sector served from
  /// a drive that dropped the last update.  Pages never written through
  /// the decorator replay as all zeros.
  void ReplayStaleOnNthRead(uint64_t n) { stale_read_at_ = n; }

  /// \brief Schedules the 0-based Nth Read() to return the content of
  /// `victim` instead of the requested page — a misdirected read.  The
  /// victim page must be readable or the read fails with its error.
  void MisdirectNthRead(uint64_t n, PageId victim) {
    misdirect_read_at_ = n;
    misdirect_victim_ = victim;
  }

  /// \brief Hard quota: every Allocate() with 0-based index >= `n`
  /// (counted across the decorator's lifetime, failed attempts included)
  /// fails with ResourceExhausted until LiftAllocationLimit().  Reserve()
  /// also refuses once the threshold has been reached — but a Reserve
  /// issued *before* the threshold still succeeds, deliberately, so the
  /// matrix tests can drive an exhaustion into the middle of a reserved
  /// multi-page operation and exercise its undo journal.
  void ExhaustAtAllocationIndex(uint64_t n) { exhaust_alloc_at_ = n; }

  /// \brief Convenience form of ExhaustAtAllocationIndex: permits `k`
  /// more allocations from this point, then the quota bites.
  void SetAllocationQuota(uint64_t k) {
    exhaust_alloc_at_ = allocs_issued_ + k;
  }

  /// \brief Lifts the hard allocation quota ("space was freed"); later
  /// allocations reach the inner store again.
  void LiftAllocationLimit() { exhaust_alloc_at_ = kNever; }

  /// \brief Transient ENOSPC window: allocations with 0-based indexes
  /// [n, n + count) fail with ResourceExhausted; the device stays up and
  /// allocation n + count succeeds — the shape of a quota blip a
  /// retrying writer should survive.
  void FailNthAllocation(uint64_t n, uint64_t count = 1) {
    fail_alloc_at_ = n;
    fail_alloc_count_ = count;
  }

  /// \brief Brings a crashed device back up (scheduled faults stay
  /// consumed; counters keep running).
  void Heal() { down_ = false; }

  bool down() const { return down_; }
  uint64_t writes_issued() const { return writes_issued_; }
  uint64_t syncs_issued() const { return syncs_issued_; }
  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t allocs_issued() const { return allocs_issued_; }

  int page_size() const override { return inner_->page_size(); }
  PageId first_data_page() const override {
    return inner_->first_data_page();
  }
  uint64_t live_page_count() const override {
    return inner_->live_page_count();
  }
  uint64_t total_page_count() const override {
    return inner_->total_page_count();
  }

  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  Status Sync() override;

  // Reservations and quotas live in the inner store; the decorator only
  // vetoes them while an injected exhaustion is active.
  Status Reserve(uint64_t n) override;
  void ReleaseReservation(uint64_t n) override {
    inner_->ReleaseReservation(n);
  }
  uint64_t reserved_pages() const override {
    return inner_->reserved_pages();
  }
  void SetMaxPages(uint64_t max_pages) override {
    inner_->SetMaxPages(max_pages);
  }
  uint64_t max_pages() const override { return inner_->max_pages(); }

 private:
  Status Down() const {
    return Status::IoError("injected crash: device is down");
  }

  static constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

  std::unique_ptr<PageStore> inner_;
  Rng rng_;
  uint64_t fail_write_at_ = kNever;
  uint64_t fail_sync_at_ = kNever;
  uint64_t fail_read_at_ = kNever;
  uint64_t fail_read_count_ = 0;
  uint64_t exhaust_alloc_at_ = kNever;
  uint64_t fail_alloc_at_ = kNever;
  uint64_t fail_alloc_count_ = 0;
  uint64_t corrupt_read_at_ = kNever;
  size_t corrupt_byte_index_ = 0;
  uint8_t corrupt_mask_ = 0x01;
  uint64_t stale_read_at_ = kNever;
  uint64_t misdirect_read_at_ = kNever;
  PageId misdirect_victim_ = kInvalidPageId;
  /// Per-page content as of the last-but-one Write, for stale replay.
  std::unordered_map<PageId, std::vector<uint8_t>> previous_content_;
  WriteFault write_fault_ = WriteFault::kError;
  double write_error_p_ = 0.0;
  double read_error_p_ = 0.0;
  uint64_t writes_issued_ = 0;
  uint64_t syncs_issued_ = 0;
  uint64_t reads_issued_ = 0;
  uint64_t allocs_issued_ = 0;
  bool down_ = false;
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_FAULT_INJECTING_PAGE_STORE_H_
