// PageOpJournal: page-level undo logging for multi-page store operations.
//
// A WAL append that seals its tail page, or a checkpoint that writes a
// multi-page image chain, performs several Allocate()/Write() calls that
// must be atomic as a unit: if allocation i fails (quota, ENOSPC), every
// earlier effect has to be unwound or the store is left with a half-built
// chain that recovery would treat as structural damage.  The journal
// records each effect as it happens and rolls all of them back — newest
// first — unless the owner declares success with Commit():
//
//   * Reserve(n)       — tracked so unconsumed slots are released.
//   * Allocate()       — tracked so the page is Free()d on rollback.
//   * GuardedWrite(..) — the page's prior bytes are kept so rollback can
//                        rewrite them (for overwrites of live pages, e.g.
//                        the WAL tail being sealed with a next-link).
//
// Rollback only uses operations that cannot themselves exhaust the quota
// (Free and overwrites of existing pages), so it succeeds in every
// exhaustion scenario; a rollback failure means the device itself broke
// mid-undo, and RollbackNow() surfaces that as a non-transient error the
// caller should treat as poison.

#ifndef BMEH_PAGESTORE_UNDO_JOURNAL_H_
#define BMEH_PAGESTORE_UNDO_JOURNAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Scoped undo journal over a PageStore (single operation, not
/// thread-safe — matching the stores' single-writer discipline).
class PageOpJournal {
 public:
  /// `store` must outlive the journal.
  explicit PageOpJournal(PageStore* store) : store_(store) {}

  /// Destructor rolls back everything not committed; a rollback failure
  /// at this point can only be logged.  Call RollbackNow() first when the
  /// caller needs to react to rollback errors.
  ~PageOpJournal();

  PageOpJournal(const PageOpJournal&) = delete;
  PageOpJournal& operator=(const PageOpJournal&) = delete;

  /// \brief Reserves `n` allocation slots up front (see PageStore::
  /// Reserve).  On failure nothing is recorded and the store is
  /// untouched — the canonical "fail before doing anything" path.
  Status Reserve(uint64_t n);

  /// \brief Allocates a page, journaled for Free() on rollback.
  Result<PageId> Allocate();

  /// \brief Overwrites live page `id` after journaling its current bytes,
  /// so rollback can restore them.  The snapshot is taken from `before`
  /// (the caller usually has the prior image in hand, e.g. the WAL tail
  /// buffer); pass the page's current content, not the new one.
  Status GuardedWrite(PageId id, std::span<const uint8_t> data,
                      std::span<const uint8_t> before);

  /// \brief Declares the operation complete: allocated pages are kept,
  /// snapshots dropped, and unconsumed reserved slots released.
  void Commit();

  /// \brief Rolls back immediately (newest effect first) and reports
  /// whether every undo step succeeded.  Idempotent; the destructor
  /// becomes a no-op afterwards.
  Status RollbackNow();

  /// \brief Pages allocated (and not yet rolled back) under this journal.
  const std::vector<PageId>& allocated() const { return allocated_; }

 private:
  struct Snapshot {
    PageId id;
    std::vector<uint8_t> bytes;
  };

  PageStore* store_;
  uint64_t reserved_ = 0;       // slots reserved and not yet consumed
  std::vector<PageId> allocated_;
  std::vector<Snapshot> snapshots_;
  bool done_ = false;           // committed or rolled back
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_UNDO_JOURNAL_H_
