// Disk-access accounting.
//
// The paper's §5 measures are defined in logical disk accesses: a read or a
// write of one directory node page or one data page.  IoCounter is the
// single place those accesses are charged; the experiment harness snapshots
// it around each operation.  The convention from DESIGN.md §2.5 applies:
// the tree root is pinned in memory, so root *reads* are not charged (the
// structures simply do not call the counter for root reads).

#ifndef BMEH_PAGESTORE_IO_STATS_H_
#define BMEH_PAGESTORE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace bmeh {

/// \brief Raw access counters for a storage device or a cost model.
struct IoStats {
  uint64_t dir_reads = 0;    ///< Directory-node page reads.
  uint64_t dir_writes = 0;   ///< Directory-node page writes.
  uint64_t data_reads = 0;   ///< Data page reads.
  uint64_t data_writes = 0;  ///< Data page writes.

  uint64_t reads() const { return dir_reads + data_reads; }
  uint64_t writes() const { return dir_writes + data_writes; }
  uint64_t total() const { return reads() + writes(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.dir_reads = dir_reads - other.dir_reads;
    d.dir_writes = dir_writes - other.dir_writes;
    d.data_reads = data_reads - other.data_reads;
    d.data_writes = data_writes - other.data_writes;
    return d;
  }

  std::string ToString() const {
    return "IoStats{dir_r=" + std::to_string(dir_reads) +
           ", dir_w=" + std::to_string(dir_writes) +
           ", data_r=" + std::to_string(data_reads) +
           ", data_w=" + std::to_string(data_writes) + "}";
  }
};

/// \brief Mutable counter the index structures charge logical accesses to.
///
/// Counters are atomic so that concurrent readers (which charge their own
/// probes) can share a structure under a reader-writer lock without data
/// races; see src/store/concurrent_index.h.
class IoCounter {
 public:
  void CountDirRead(uint64_t n = 1) {
    dir_reads_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDirWrite(uint64_t n = 1) {
    dir_writes_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDataRead(uint64_t n = 1) {
    data_reads_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountDataWrite(uint64_t n = 1) {
    data_writes_.fetch_add(n, std::memory_order_relaxed);
  }

  /// \brief A consistent-enough snapshot of the counters.
  IoStats stats() const {
    IoStats s;
    s.dir_reads = dir_reads_.load(std::memory_order_relaxed);
    s.dir_writes = dir_writes_.load(std::memory_order_relaxed);
    s.data_reads = data_reads_.load(std::memory_order_relaxed);
    s.data_writes = data_writes_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    dir_reads_.store(0, std::memory_order_relaxed);
    dir_writes_.store(0, std::memory_order_relaxed);
    data_reads_.store(0, std::memory_order_relaxed);
    data_writes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> dir_reads_{0};
  std::atomic<uint64_t> dir_writes_{0};
  std::atomic<uint64_t> data_reads_{0};
  std::atomic<uint64_t> data_writes_{0};
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_IO_STATS_H_
