// BufferPool: a pin-counted LRU page cache over a PageStore.
//
// Used by the serialization path (BMEH save/load) and directly testable as
// a substrate.  Frames are pinned through the RAII PageHandle; unpinned
// frames are evicted in LRU order, writing back dirty contents.

#ifndef BMEH_PAGESTORE_BUFFER_POOL_H_
#define BMEH_PAGESTORE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

class BufferPool;

/// \brief RAII pin on a cached page frame.
///
/// The frame stays in memory (and is never evicted) while at least one
/// handle references it.  Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  /// \brief True iff this handle pins a frame.
  bool valid() const { return pool_ != nullptr; }

  PageId id() const { return id_; }
  std::span<uint8_t> data();
  std::span<const uint8_t> data() const;

  /// \brief Marks the frame dirty so eviction/flush writes it back.
  void MarkDirty();

  /// \brief Releases the pin early.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id) : pool_(pool), id_(id) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// \brief Pin-counted LRU cache of PageStore pages.
class BufferPool {
 public:
  /// \brief A pool of `capacity` frames over `store` (not owned).
  BufferPool(PageStore* store, int capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Pins page `id`, reading it from the store on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// \brief Allocates a fresh zeroed page and pins it (already dirty).
  Result<PageHandle> New();

  /// \brief Drops the page from the cache (if present) and frees it in the
  /// store.  The page must not be pinned.
  Status Delete(PageId id);

  /// \brief Writes back all dirty frames (keeps them cached).
  Status FlushAll();

  int capacity() const { return capacity_; }
  // The hit/miss/eviction counters are relaxed atomics: the pool itself
  // is single-writer, but it is reachable from concurrent readers through
  // ConcurrentIndex-style wrappers whose shared lock permits overlapping
  // Fetch calls, and observers snapshot the counters from other threads.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// \brief Fraction of Fetch calls served from memory (0 when idle).
  double hit_rate() const {
    const uint64_t h = hits(), m = misses();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / double(h + m);
  }

  /// \brief Registers a sampling source exposing `bufferpool_*` counters
  /// and the hit rate (in millionths, gauges being integral) on
  /// `registry`.  The registry must outlive the pool (the destructor
  /// detaches); pass nullptr to detach.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// \brief Number of frames currently cached.
  size_t cached_count() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    int pins = 0;
    bool dirty = false;
    // Position in lru_ when pins == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  Status EvictOne();

  PageStore* store_;
  int capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = least recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_BUFFER_POOL_H_
