// PageStore: the block device abstraction.
//
// Two implementations: an in-memory store for simulation and tests, and a
// POSIX-file-backed store (4 KiB pages, header page with a free-list chain)
// used by the BMEH-tree's save/load path and the persistence tests.  A
// third, FaultInjectingPageStore (fault_injecting_page_store.h), decorates
// any of them with deterministic failure injection for crash testing.

#ifndef BMEH_PAGESTORE_PAGE_STORE_H_
#define BMEH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/pagestore/page.h"

namespace bmeh {

/// \brief Physical-access statistics of a PageStore.
struct StoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;
};

/// \brief Abstract fixed-size page device.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// \brief Size of every page in bytes.
  virtual int page_size() const = 0;

  /// \brief Allocates a page (possibly recycling a freed one).
  virtual Result<PageId> Allocate() = 0;

  /// \brief Returns a page to the free list.
  virtual Status Free(PageId id) = 0;

  /// \brief Reads page `id` into `out` (out.size() must equal page_size()).
  virtual Status Read(PageId id, std::span<uint8_t> out) = 0;

  /// \brief Writes page `id` from `data` (size must equal page_size()).
  virtual Status Write(PageId id, std::span<const uint8_t> data) = 0;

  /// \brief Number of currently live (allocated, not freed) pages.
  virtual uint64_t live_page_count() const = 0;

  /// \brief Makes every acknowledged write durable (fsync for file-backed
  /// stores; a no-op where there is no volatile cache to flush).
  virtual Status Sync() { return Status::OK(); }

  /// \brief Id the store's first Allocate() on a fresh device returns
  /// (page ids below it are reserved for store metadata).  Deterministic
  /// per backend, which lets layers above place bootstrap pages — e.g.
  /// BmehStore's superblock — at a known id.
  virtual PageId first_data_page() const { return 0; }

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats{}; }

 protected:
  StoreStats stats_;
};

/// \brief Heap-backed page store.
class InMemoryPageStore : public PageStore {
 public:
  explicit InMemoryPageStore(int page_size = kDefaultPageSize);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;

 private:
  bool IsLive(PageId id) const;

  int page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;  // nullptr == freed slot
  std::vector<PageId> free_list_;
};

/// \brief POSIX-file-backed page store.
///
/// Layout: page 0 is a header (magic, page size, page count, free-list
/// head); each free page stores the id of the next free page in its first
/// four bytes.  The header is rewritten on Sync() and on destruction.
///
/// Crash-consistency contract: the on-disk header (and with it the free
/// chain) is only guaranteed coherent as of the last Sync().  A reader
/// reopening after a crash must therefore either trust the chain (plain
/// Open(), fine after a clean close) or open with OpenForRecovery() —
/// which ignores the possibly-stale chain — and hand the store a
/// reconstructed free list via AdoptFreeList() once it has determined
/// which pages are reachable.  BmehStore does the latter on every open.
///
/// The file is flock()ed exclusively for the lifetime of the object, so a
/// second Open/Create of the same path (from this or another process)
/// fails with IoError instead of silently corrupting the store.
class FilePageStore : public PageStore {
 public:
  ~FilePageStore() override;

  /// \brief Creates a new store file (truncating any existing file).
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, int page_size = kDefaultPageSize);

  /// \brief Opens an existing store file, validating the header and
  /// rebuilding the free list from the on-disk chain.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  /// \brief Opens an existing store file without walking the free chain
  /// (which may be stale after a crash).  The store starts with an empty
  /// free list; the caller is expected to call AdoptFreeList() with the
  /// set of unreachable pages it computed.
  static Result<std::unique_ptr<FilePageStore>> OpenForRecovery(
      const std::string& path);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;
  PageId first_data_page() const override { return 1; }

  /// \brief Flushes the header and fsyncs the file.  Once an fsync has
  /// failed the error is sticky: the kernel may have dropped the dirty
  /// pages, so later "successful" fsyncs must not be reported as
  /// durability (the PostgreSQL fsync-gate lesson).
  Status Sync() override;

  /// \brief Replaces the free list wholesale with `pages` (each must be a
  /// valid non-header page, not currently free).  Rewrites the on-disk
  /// chain over the adopted pages — safe even mid-crash, because adopted
  /// pages are by definition unreachable from any live structure.
  Status AdoptFreeList(const std::vector<PageId>& pages);

  /// \brief Total pages in the file, including the header page.
  uint64_t page_count() const { return page_count_; }

  /// \brief Testing hook: drops the file descriptor *without* the
  /// destructor's header flush, leaving the on-disk state exactly as the
  /// last completed write left it — what a process crash would leave.
  /// Every subsequent operation fails with IoError.
  void CrashForTesting();

  /// \brief Testing hook: skip the physical fsync in Sync() (header write
  /// still happens).  Process-level crash tests do not need the kernel
  /// flush and save two orders of magnitude of wall clock on ext4.
  void DisableFsyncForTesting() { fsync_enabled_ = false; }

 private:
  FilePageStore(int fd, int page_size);
  static Result<std::unique_ptr<FilePageStore>> OpenImpl(
      const std::string& path, bool walk_free_chain);
  Status WriteHeader();
  Status ReadRaw(PageId id, std::span<uint8_t> out);
  Status WriteRaw(PageId id, std::span<const uint8_t> data);

  int fd_ = -1;
  int page_size_ = 0;
  uint64_t page_count_ = 1;  // includes the header page
  uint64_t live_count_ = 0;
  PageId free_head_ = kInvalidPageId;
  bool fsync_enabled_ = true;
  // First fsync failure, remembered forever (see Sync()).
  Status sticky_sync_error_;
  // In-memory mirror of the free chain, newest free page last (the back
  // is always free_head_).  Lets Allocate() pop without a disk read.
  std::vector<PageId> free_list_;
  // Membership mirror, to reject use-after-free and double free.
  std::unordered_set<PageId> free_set_;
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_PAGE_STORE_H_
