// PageStore: the block device abstraction.
//
// Two implementations: an in-memory store for simulation and tests, and a
// POSIX-file-backed store (4 KiB pages, header page with a free-list chain)
// used by the BMEH-tree's save/load path and the persistence tests.

#ifndef BMEH_PAGESTORE_PAGE_STORE_H_
#define BMEH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/pagestore/page.h"

namespace bmeh {

/// \brief Physical-access statistics of a PageStore.
struct StoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;
};

/// \brief Abstract fixed-size page device.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// \brief Size of every page in bytes.
  virtual int page_size() const = 0;

  /// \brief Allocates a page (possibly recycling a freed one).
  virtual Result<PageId> Allocate() = 0;

  /// \brief Returns a page to the free list.
  virtual Status Free(PageId id) = 0;

  /// \brief Reads page `id` into `out` (out.size() must equal page_size()).
  virtual Status Read(PageId id, std::span<uint8_t> out) = 0;

  /// \brief Writes page `id` from `data` (size must equal page_size()).
  virtual Status Write(PageId id, std::span<const uint8_t> data) = 0;

  /// \brief Number of currently live (allocated, not freed) pages.
  virtual uint64_t live_page_count() const = 0;

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats{}; }

 protected:
  StoreStats stats_;
};

/// \brief Heap-backed page store.
class InMemoryPageStore : public PageStore {
 public:
  explicit InMemoryPageStore(int page_size = kDefaultPageSize);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;

 private:
  bool IsLive(PageId id) const;

  int page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;  // nullptr == freed slot
  std::vector<PageId> free_list_;
};

/// \brief POSIX-file-backed page store.
///
/// Layout: page 0 is a header (magic, page size, page count, free-list
/// head); each free page stores the id of the next free page in its first
/// four bytes.  The header is rewritten on Sync() and on destruction.
class FilePageStore : public PageStore {
 public:
  ~FilePageStore() override;

  /// \brief Creates a new store file (truncating any existing file).
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, int page_size = kDefaultPageSize);

  /// \brief Opens an existing store file, validating the header.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;

  /// \brief Flushes the header and fsyncs the file.
  Status Sync();

 private:
  FilePageStore(int fd, int page_size);
  Status WriteHeader();
  Status ReadRaw(PageId id, std::span<uint8_t> out);
  Status WriteRaw(PageId id, std::span<const uint8_t> data);

  int fd_ = -1;
  int page_size_ = 0;
  uint64_t page_count_ = 1;  // includes the header page
  uint64_t live_count_ = 0;
  PageId free_head_ = kInvalidPageId;
  // Mirror of the on-disk free chain, to reject use-after-free and double
  // free (rebuilt by Open()).
  std::unordered_set<PageId> free_set_;
};

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_PAGE_STORE_H_
