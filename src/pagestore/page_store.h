// PageStore: the block device abstraction.
//
// Two implementations: an in-memory store for simulation and tests, and a
// POSIX-file-backed store (4 KiB pages, header page with a free-list chain)
// used by the BMEH-tree's save/load path and the persistence tests.  A
// third, FaultInjectingPageStore (fault_injecting_page_store.h), decorates
// any of them with deterministic failure injection for crash testing.

#ifndef BMEH_PAGESTORE_PAGE_STORE_H_
#define BMEH_PAGESTORE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/pagestore/page.h"

namespace bmeh {

/// \brief Physical-access statistics of a PageStore.
struct StoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;
  /// Read attempts repeated after a transient I/O error or a checksum
  /// mismatch (each retry counts once, successful or not).
  uint64_t read_retries = 0;
  /// Page trailer verifications that failed (counted per failed attempt).
  uint64_t checksum_failures = 0;
  /// Pages a layer above has quarantined after verified corruption
  /// (recorded here so one snapshot tells the whole integrity story).
  uint64_t pages_quarantined = 0;
  /// Allocate()/Reserve() calls refused (quota, ENOSPC, OOM) or rolled
  /// back after a failed page write.
  uint64_t alloc_failures = 0;
  /// Peak number of simultaneously live pages — the high-water allocation
  /// mark the store would need as a quota to never refuse.
  uint64_t high_water_pages = 0;
};

/// \brief Abstract fixed-size page device.
///
/// Resource-exhaustion contract: an Allocate() or Reserve() that fails
/// with Status::ResourceExhausted leaves the store exactly as it was —
/// no bookkeeping, no on-disk bytes, nothing — so the caller may retry
/// once space frees.  Multi-page operations use the reservation protocol
/// to fail *up front* instead of mid-flight: Reserve(n) either sets aside
/// n allocation slots (free pages plus permitted growth under the quota)
/// or refuses with ResourceExhausted before anything is touched.  A
/// subsequent Allocate() consumes an outstanding reserved slot first; the
/// protocol is single-writer — the operation holding the reservation is
/// the one allocating — matching the stores' single-threaded use.
class PageStore {
 public:
  /// QuotaHeadroom() value meaning "no limit configured".
  static constexpr uint64_t kUnlimitedHeadroom = ~uint64_t{0};

  virtual ~PageStore();

  /// \brief Size of every page in bytes.
  virtual int page_size() const = 0;

  /// \brief Allocates a page (possibly recycling a freed one).
  virtual Result<PageId> Allocate() = 0;

  /// \brief Returns a page to the free list.
  virtual Status Free(PageId id) = 0;

  /// \brief Reads page `id` into `out` (out.size() must equal page_size()).
  virtual Status Read(PageId id, std::span<uint8_t> out) = 0;

  /// \brief Writes page `id` from `data` (size must equal page_size()).
  virtual Status Write(PageId id, std::span<const uint8_t> data) = 0;

  /// \brief Number of currently live (allocated, not freed) pages.
  virtual uint64_t live_page_count() const = 0;

  /// \brief Total pages the store occupies — header/metadata and freed
  /// pages included.  This is the quantity SetMaxPages() bounds.
  virtual uint64_t total_page_count() const = 0;

  /// \brief Makes every acknowledged write durable (fsync for file-backed
  /// stores; a no-op where there is no volatile cache to flush).
  virtual Status Sync() { return Status::OK(); }

  /// \brief Id the store's first Allocate() on a fresh device returns
  /// (page ids below it are reserved for store metadata).  Deterministic
  /// per backend, which lets layers above place bootstrap pages — e.g.
  /// BmehStore's superblock — at a known id.
  virtual PageId first_data_page() const { return 0; }

  /// \brief Sets aside `n` allocation slots so the next `n` Allocate()
  /// calls cannot fail for lack of space, or fails with ResourceExhausted
  /// (store untouched) when the quota cannot cover them.  Reservations
  /// are additive; release what goes unused with ReleaseReservation().
  virtual Status Reserve(uint64_t n);

  /// \brief Returns `n` unused reserved slots to the general pool.
  virtual void ReleaseReservation(uint64_t n);

  /// \brief Reserved-but-unconsumed allocation slots.
  virtual uint64_t reserved_pages() const { return reserved_; }

  /// \brief Caps the store at `max_pages` total pages (0 = unlimited).
  /// For file-backed stores the cap counts every page in the file, header
  /// and free pages included — it bounds the file size, so freed pages
  /// remain allocatable under the cap while growth past it is refused
  /// with ResourceExhausted.
  virtual void SetMaxPages(uint64_t max_pages) { max_pages_ = max_pages; }
  virtual uint64_t max_pages() const { return max_pages_; }

  const StoreStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StoreStats{}; }

  /// \brief Lets the owning layer (e.g. BmehStore) record that it
  /// quarantined a page after this store reported verified corruption.
  void NoteQuarantined(uint64_t n = 1) { stats_.pages_quarantined += n; }

  /// \brief Hooks this store into a MetricsRegistry: registers a sampling
  /// source that exposes StoreStats and the page counts as `pagestore_*`
  /// counters/gauges, and charges physical page read/write latency into
  /// the `page_read_latency_ns` / `page_write_latency_ns` histograms.
  /// The registry must outlive the store (the destructor detaches).
  /// Pass nullptr to detach.  Not attached = zero overhead beyond one
  /// branch per read/write.
  ///
  /// StoreStats and the page counts are owner-synchronized plain fields.
  /// When the owner mutates the store from its own threads (e.g.
  /// BmehStore's group-commit thread), pass its operation lock as
  /// `sample_guard`: the sampling source then takes it shared, making
  /// Snapshot() safe against concurrent mutation.  Null (the default)
  /// keeps the single-threaded-owner behaviour.
  ///
  /// `prefix` labels the sampled names (e.g. "shard3_" publishes
  /// shard3_pagestore_reads_total) so several devices can share one
  /// registry without overwriting each other's sample; the latency
  /// histograms stay unprefixed and aggregate across devices.
  void AttachMetrics(obs::MetricsRegistry* registry,
                     std::shared_mutex* sample_guard = nullptr,
                     const std::string& prefix = "");

 protected:
  /// Allocation slots obtainable right now without violating the quota:
  /// recyclable free pages plus permitted growth.  kUnlimitedHeadroom
  /// when no limit applies.  Includes slots already reserved (Reserve
  /// accounts for those separately against this total).
  virtual uint64_t QuotaHeadroom() const { return kUnlimitedHeadroom; }

  /// Consumes one allocation slot at the top of an Allocate()
  /// implementation: an outstanding reservation if any, else a headroom
  /// check.  On ResourceExhausted nothing is consumed.
  Status TakeAllocationSlot(bool* from_reservation);

  /// Undoes TakeAllocationSlot after the allocation failed downstream.
  void ReturnAllocationSlot(bool from_reservation);

  StoreStats stats_;
  uint64_t reserved_ = 0;
  uint64_t max_pages_ = 0;
  /// Latency histograms charged by the concrete Read/Write paths; null
  /// (the default) means un-instrumented.
  obs::Histogram* read_latency_ = nullptr;
  obs::Histogram* write_latency_ = nullptr;

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
};

/// \brief Heap-backed page store.
///
/// Allocation failures are survivable: heap exhaustion (std::bad_alloc)
/// and the optional SetMaxPages() cap both surface as ResourceExhausted
/// with the store unchanged, mirroring the file store's disk-full
/// behaviour so the two backends stay interchangeable in tests.
class InMemoryPageStore : public PageStore {
 public:
  explicit InMemoryPageStore(int page_size = kDefaultPageSize);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;
  uint64_t total_page_count() const override { return pages_.size(); }

 protected:
  uint64_t QuotaHeadroom() const override;

 private:
  bool IsLive(PageId id) const;

  int page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;  // nullptr == freed slot
  std::vector<PageId> free_list_;
};

/// \brief POSIX-file-backed page store.
///
/// Layout: page 0 is a header (magic, page size, page count, free-list
/// head); each free page stores the id of the next free page in its first
/// four bytes.  The header is rewritten on Sync() and on destruction.
///
/// On-disk integrity (format v2): every physical page — header, live,
/// and free alike — ends in a 16-byte self-checksum trailer
///
///     [version u8 | pad u8*3 | page id u32 | store epoch u32 | crc u32]
///
/// appended after the page_size() caller-visible payload bytes, so a
/// physical page occupies page_size() + kPageTrailerSize bytes and the
/// payload contract of Read/Write is unchanged.  The CRC32 covers payload
/// plus trailer prefix and is seeded with the page id mixed with the
/// store's epoch (a random per-file value drawn at Create), which makes a
/// misdirected read or write detectable: a page's bytes only verify at
/// the id and in the file they were written for.  Read() verifies the
/// trailer and retries transient I/O errors and checksum mismatches with
/// exponential backoff (a re-read catches an in-flight torn read); only
/// after the retry budget is exhausted does it surface Status::DataLoss.
/// stats() exposes read_retries / checksum_failures / pages_quarantined.
///
/// Files written by the pre-checksum v1 format are still opened: they are
/// detected by their old header magic and served without verification
/// (format_version() == 1); `bmeh_cli fsck --repair` rewrites such a
/// store into a fresh v2 file.  In-place upgrade is impossible because v1
/// payloads occupy the whole physical page, so there is no room for a
/// trailer at the v1 offsets.
///
/// Crash-consistency contract: the on-disk header (and with it the free
/// chain) is only guaranteed coherent as of the last Sync().  A reader
/// reopening after a crash must therefore either trust the chain (plain
/// Open(), fine after a clean close) or open with OpenForRecovery() —
/// which ignores the possibly-stale chain — and hand the store a
/// reconstructed free list via AdoptFreeList() once it has determined
/// which pages are reachable.  BmehStore does the latter on every open.
///
/// The file is flock()ed exclusively for the lifetime of the object, so a
/// second Open/Create of the same path (from this or another process)
/// fails with IoError instead of silently corrupting the store.
class FilePageStore : public PageStore {
 public:
  /// Bytes of self-checksum trailer appended to every physical v2 page.
  static constexpr int kPageTrailerSize = 16;
  /// Trailer format version byte written by this code.
  static constexpr uint8_t kPageFormatV2 = 2;

  ~FilePageStore() override;

  /// \brief Creates a new store file (truncating any existing file).
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, int page_size = kDefaultPageSize);

  /// \brief Opens an existing store file, validating the header and
  /// rebuilding the free list from the on-disk chain.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  /// \brief Opens an existing store file without walking the free chain
  /// (which may be stale after a crash).  The store starts with an empty
  /// free list; the caller is expected to call AdoptFreeList() with the
  /// set of unreachable pages it computed.
  static Result<std::unique_ptr<FilePageStore>> OpenForRecovery(
      const std::string& path);

  /// \brief Last-ditch open for the salvage tooling, used when even
  /// OpenForRecovery rejects the file because the header page is
  /// destroyed (bad magic or implausible page size).  Ignores the header
  /// entirely: the caller supplies the page size, the file is sized by
  /// st_size, and the store epoch is recovered from the first page whose
  /// trailer is self-consistent under its own claimed epoch.  v2 files
  /// only — a v1 file without its header has nothing to verify against.
  static Result<std::unique_ptr<FilePageStore>> OpenIgnoringHeader(
      const std::string& path, int page_size);

  int page_size() const override { return page_size_; }
  Result<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, std::span<uint8_t> out) override;
  Status Write(PageId id, std::span<const uint8_t> data) override;
  uint64_t live_page_count() const override;
  uint64_t total_page_count() const override { return page_count_; }
  PageId first_data_page() const override { return 1; }

  /// \brief Flushes the header and fsyncs the file.  Once an fsync has
  /// failed the error is sticky: the kernel may have dropped the dirty
  /// pages, so later "successful" fsyncs must not be reported as
  /// durability (the PostgreSQL fsync-gate lesson).
  Status Sync() override;

  /// \brief Replaces the free list wholesale with `pages` (each must be a
  /// valid non-header page, not currently free).  Rewrites the on-disk
  /// chain over the adopted pages — safe even mid-crash, because adopted
  /// pages are by definition unreachable from any live structure.
  Status AdoptFreeList(const std::vector<PageId>& pages);

  /// \brief Total pages in the file, including the header page.
  uint64_t page_count() const { return page_count_; }

  /// \brief On-disk format: 1 = legacy trailer-free pages (verification
  /// off), 2 = self-checksumming pages.
  int format_version() const { return format_version_; }

  /// \brief Random per-file value folded into every page checksum (0 for
  /// v1 files).
  uint32_t epoch() const { return epoch_; }

  /// \brief Whether the header page failed verification at open (only
  /// possible for OpenForRecovery, which tolerates it; a later Sync
  /// rewrites the header and heals it).
  bool header_damaged() const { return header_damaged_; }

  /// \brief Verifies the trailer of physical page `id` without touching
  /// the free-list bookkeeping — usable on live, free, and header pages
  /// alike (the scrubber's primitive).  Performs a single read attempt,
  /// no retries.  Returns OK, DataLoss (trailer mismatch), or IoError.
  /// On a v1 store, reads the page and returns OK (nothing to verify).
  Status VerifyPage(PageId id);

  /// \brief Bounds for Read()'s verified-read retry loop: up to
  /// `max_retries` re-reads after the initial attempt, sleeping
  /// `backoff_us << attempt` microseconds before each.  Defaults: 3
  /// retries, 200 us base.
  void SetReadRetryPolicy(int max_retries, int backoff_us) {
    max_read_retries_ = max_retries < 0 ? 0 : max_retries;
    retry_backoff_us_ = backoff_us < 0 ? 0 : backoff_us;
  }

  /// \brief Testing hook: the next `n` physical page reads fail with a
  /// transient IoError before reaching the kernel (exercises the retry
  /// loop without a faulty disk).
  void InjectTransientReadErrorsForTesting(int n) {
    inject_read_errors_ = n;
  }

  /// \brief Testing hook: the next `n` physical page reads return the
  /// page with one payload byte flipped (models an in-flight torn/bit-rot
  /// read that a re-read resolves).
  void CorruptNextReadsForTesting(int n) { inject_read_corruptions_ = n; }

  /// \brief Testing hook: drops the file descriptor *without* the
  /// destructor's header flush, leaving the on-disk state exactly as the
  /// last completed write left it — what a process crash would leave.
  /// Every subsequent operation fails with IoError.
  void CrashForTesting();

  /// \brief Testing hook: skip the physical fsync in Sync() (header write
  /// still happens).  Process-level crash tests do not need the kernel
  /// flush and save two orders of magnitude of wall clock on ext4.
  void DisableFsyncForTesting() { fsync_enabled_ = false; }

 protected:
  uint64_t QuotaHeadroom() const override;

 private:
  FilePageStore(int fd, int page_size, int format_version, uint32_t epoch);
  static Result<std::unique_ptr<FilePageStore>> OpenImpl(
      const std::string& path, bool walk_free_chain);
  Status WriteHeader();
  /// Physical page size: payload plus trailer (v2) or payload alone (v1).
  int physical_page_size() const {
    return format_version_ >= 2 ? page_size_ + kPageTrailerSize : page_size_;
  }
  void FillTrailer(PageId id, std::span<uint8_t> physical) const;
  Status CheckTrailer(PageId id, std::span<const uint8_t> physical) const;
  /// One pread of the physical page + trailer verification; no retries.
  Status ReadPhysicalOnce(PageId id, std::span<uint8_t> physical);
  /// Verified read of the payload with the retry/backoff loop.
  Status ReadRaw(PageId id, std::span<uint8_t> out);
  /// Composes payload + trailer and writes the physical page.
  Status WriteRaw(PageId id, std::span<const uint8_t> data);

  int fd_ = -1;
  int page_size_ = 0;
  int format_version_ = 2;
  uint32_t epoch_ = 0;
  uint64_t page_count_ = 1;  // includes the header page
  uint64_t live_count_ = 0;
  PageId free_head_ = kInvalidPageId;
  bool fsync_enabled_ = true;
  bool header_damaged_ = false;
  int max_read_retries_ = 3;
  int retry_backoff_us_ = 200;
  int inject_read_errors_ = 0;
  int inject_read_corruptions_ = 0;
  // First fsync failure, remembered forever (see Sync()).
  Status sticky_sync_error_;
  // In-memory mirror of the free chain, newest free page last (the back
  // is always free_head_).  Lets Allocate() pop without a disk read.
  std::vector<PageId> free_list_;
  // Membership mirror, to reject use-after-free and double free.
  std::unordered_set<PageId> free_set_;
};

/// \brief Fsyncs directory `dir` so that renames and creates inside it
/// are durable — data fsyncs alone do not persist directory entries.
///
/// Failures are sticky per directory path, process-wide, for the same
/// reason FilePageStore::Sync() failures are sticky on the file: after a
/// failed fsync the kernel may have dropped the dirty entries, so a later
/// "successful" fsync of the same directory must not be reported as
/// durability (the PostgreSQL fsync-gate lesson, applied to metadata).
/// An open() failure is not sticky — nothing was flushed or dropped, and
/// the caller may retry once the path problem clears.
Status SyncDirectory(const std::string& dir);

namespace internal {

/// \brief Testing seam: the next `count` SyncDirectory() calls fail as if
/// the directory fsync itself failed — and, like a real failure, stick to
/// the directory path they hit.  Process-global; not for concurrent tests.
void InjectDirSyncErrorsForTesting(int count);

/// \brief Clears every sticky directory-fsync failure and any armed
/// injection, so tests do not leak state into each other.
void ResetStickyDirSyncErrorsForTesting();

/// \brief Testing seam for the EINTR-retry loops around the file page
/// store's syscalls (pread / pwrite / open).  Arms the injector so that,
/// starting with the `nth` intercepted syscall (0-based), the next
/// `count` syscalls fail with EINTR before reaching the kernel.  Every
/// syscall site must absorb the interruption and retry — EINTR is a
/// signal delivery, not an I/O failure.  Pass (UINT64_MAX, 0) to disarm
/// (the default state).  Process-global; not for concurrent tests.
void InjectEintrForTesting(uint64_t nth, uint64_t count);

/// \brief How many injected EINTRs the retry loops have absorbed since
/// process start (asserts that the injection actually hit a loop).
uint64_t EintrRetriesForTesting();

}  // namespace internal

}  // namespace bmeh

#endif  // BMEH_PAGESTORE_PAGE_STORE_H_
