#include "src/pagestore/fault_injecting_page_store.h"

#include <algorithm>
#include <cstring>

namespace bmeh {

Result<PageId> FaultInjectingPageStore::Allocate() {
  if (down_) return Down();
  const uint64_t index = allocs_issued_++;
  if (index >= fail_alloc_at_ && index < fail_alloc_at_ + fail_alloc_count_) {
    ++stats_.alloc_failures;
    return Status::ResourceExhausted(
        "injected transient allocation failure at allocation index " +
        std::to_string(index));
  }
  if (index >= exhaust_alloc_at_) {
    ++stats_.alloc_failures;
    return Status::ResourceExhausted(
        "injected quota: device out of space at allocation index " +
        std::to_string(index));
  }
  ++stats_.allocs;
  return inner_->Allocate();
}

Status FaultInjectingPageStore::Reserve(uint64_t n) {
  if (down_) return Down();
  if (allocs_issued_ >= exhaust_alloc_at_) {
    ++stats_.alloc_failures;
    return Status::ResourceExhausted(
        "injected quota: cannot reserve " + std::to_string(n) +
        " pages on an exhausted device");
  }
  return inner_->Reserve(n);
}

Status FaultInjectingPageStore::Free(PageId id) {
  if (down_) return Down();
  ++stats_.frees;
  return inner_->Free(id);
}

Status FaultInjectingPageStore::Read(PageId id, std::span<uint8_t> out) {
  if (down_) return Down();
  const uint64_t index = reads_issued_++;
  if (index >= fail_read_at_ && index < fail_read_at_ + fail_read_count_) {
    return Status::IoError("injected transient read error at read index " +
                           std::to_string(index));
  }
  if (read_error_p_ > 0.0 && rng_.NextBool(read_error_p_)) {
    return Status::IoError("injected read error at read index " +
                           std::to_string(index));
  }
  ++stats_.reads;
  if (index == stale_read_at_) {
    // Serve the content the page held before its latest Write — zeros if
    // it was never written through this decorator.
    auto it = previous_content_.find(id);
    std::fill(out.begin(), out.end(), 0);
    if (it != previous_content_.end()) {
      std::memcpy(out.data(), it->second.data(),
                  std::min(out.size(), it->second.size()));
    }
    return Status::OK();
  }
  if (index == misdirect_read_at_) {
    return inner_->Read(misdirect_victim_, out);
  }
  BMEH_RETURN_NOT_OK(inner_->Read(id, out));
  if (index == corrupt_read_at_ && !out.empty()) {
    out[corrupt_byte_index_ % out.size()] ^= corrupt_mask_;
  }
  return Status::OK();
}

Status FaultInjectingPageStore::Write(PageId id,
                                      std::span<const uint8_t> data) {
  if (down_) return Down();
  const uint64_t index = writes_issued_++;
  if (index == fail_write_at_) {
    down_ = true;
    if (write_fault_ == WriteFault::kTorn) {
      // A torn sector: the leading half of the new image lands, the rest
      // keeps whatever the page held before.  Compose the blend and push
      // it through the inner store (fresh pages read back as zeros, so a
      // failed read only ever under-reports surviving old bytes).
      std::vector<uint8_t> blend(data.size(), 0);
      if (!inner_->Read(id, blend).ok()) {
        std::fill(blend.begin(), blend.end(), 0);
      }
      std::memcpy(blend.data(), data.data(), data.size() / 2);
      Status ignored = inner_->Write(id, blend);
      (void)ignored;
    }
    return Status::IoError("injected crash at write index " +
                           std::to_string(index));
  }
  if (write_error_p_ > 0.0 && rng_.NextBool(write_error_p_)) {
    return Status::IoError("injected write error at write index " +
                           std::to_string(index));
  }
  ++stats_.writes;
  if (stale_read_at_ != kNever) {
    // Remember what the page held before this write so a scheduled stale
    // read can replay it.  Only tracked while a stale fault is armed.
    std::vector<uint8_t> old(data.size(), 0);
    if (!inner_->Read(id, old).ok()) {
      std::fill(old.begin(), old.end(), 0);
    }
    previous_content_[id] = std::move(old);
  }
  return inner_->Write(id, data);
}

Status FaultInjectingPageStore::Sync() {
  if (down_) return Down();
  const uint64_t index = syncs_issued_++;
  if (index == fail_sync_at_) {
    down_ = true;
    return Status::IoError("injected crash at sync index " +
                           std::to_string(index));
  }
  return inner_->Sync();
}

}  // namespace bmeh
