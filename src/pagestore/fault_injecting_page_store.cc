#include "src/pagestore/fault_injecting_page_store.h"

#include <cstring>

namespace bmeh {

Result<PageId> FaultInjectingPageStore::Allocate() {
  if (down_) return Down();
  ++stats_.allocs;
  return inner_->Allocate();
}

Status FaultInjectingPageStore::Free(PageId id) {
  if (down_) return Down();
  ++stats_.frees;
  return inner_->Free(id);
}

Status FaultInjectingPageStore::Read(PageId id, std::span<uint8_t> out) {
  if (down_) return Down();
  const uint64_t index = reads_issued_++;
  if (read_error_p_ > 0.0 && rng_.NextBool(read_error_p_)) {
    return Status::IoError("injected read error at read index " +
                           std::to_string(index));
  }
  ++stats_.reads;
  return inner_->Read(id, out);
}

Status FaultInjectingPageStore::Write(PageId id,
                                      std::span<const uint8_t> data) {
  if (down_) return Down();
  const uint64_t index = writes_issued_++;
  if (index == fail_write_at_) {
    down_ = true;
    if (write_fault_ == WriteFault::kTorn) {
      // A torn sector: the leading half of the new image lands, the rest
      // keeps whatever the page held before.  Compose the blend and push
      // it through the inner store (fresh pages read back as zeros, so a
      // failed read only ever under-reports surviving old bytes).
      std::vector<uint8_t> blend(data.size(), 0);
      if (!inner_->Read(id, blend).ok()) {
        std::fill(blend.begin(), blend.end(), 0);
      }
      std::memcpy(blend.data(), data.data(), data.size() / 2);
      Status ignored = inner_->Write(id, blend);
      (void)ignored;
    }
    return Status::IoError("injected crash at write index " +
                           std::to_string(index));
  }
  if (write_error_p_ > 0.0 && rng_.NextBool(write_error_p_)) {
    return Status::IoError("injected write error at write index " +
                           std::to_string(index));
  }
  ++stats_.writes;
  return inner_->Write(id, data);
}

Status FaultInjectingPageStore::Sync() {
  if (down_) return Down();
  const uint64_t index = syncs_issued_++;
  if (index == fail_sync_at_) {
    down_ = true;
    return Status::IoError("injected crash at sync index " +
                           std::to_string(index));
  }
  return inner_->Sync();
}

}  // namespace bmeh
