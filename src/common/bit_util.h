// Bit manipulation helpers shared by the hashing directories.
//
// Convention used throughout the library: a pseudo-key component is a
// fixed-width unsigned value of `width` bits where *bit 1 is the most
// significant bit* (the paper writes keys as x1 x2 x3 ... xw, MSB first).
// "Offsets" count bits already consumed from the MSB side.

#ifndef BMEH_COMMON_BIT_UTIL_H_
#define BMEH_COMMON_BIT_UTIL_H_

#include <cstdint>

#include "src/common/logging.h"

namespace bmeh {
namespace bit_util {

/// \brief Extracts `count` bits of `v` starting `offset` bits below the MSB
/// of a `width`-bit value, returned right-aligned.
///
/// ExtractBits(0b1011'0000...0 (width=32), offset=1, count=3) == 0b011.
/// count == 0 yields 0.
inline uint64_t ExtractBits(uint64_t v, int width, int offset, int count) {
  BMEH_DCHECK(width >= 1 && width <= 64);
  BMEH_DCHECK(offset >= 0 && count >= 0 && offset + count <= width);
  if (count == 0) return 0;
  int shift = width - offset - count;
  uint64_t mask = (count >= 64) ? ~uint64_t{0} : ((uint64_t{1} << count) - 1);
  return (v >> shift) & mask;
}

/// \brief The single bit `offset` bits below the MSB of a `width`-bit value.
inline int BitAt(uint64_t v, int width, int offset) {
  return static_cast<int>(ExtractBits(v, width, offset, 1));
}

/// \brief First `h` bits (MSB side) of an `H`-bit index value `i`.
///
/// This is the extendible-hashing "group prefix": directory cells whose
/// indexes share the first h bits form one group.
inline uint64_t IndexPrefix(uint64_t i, int H, int h) {
  BMEH_DCHECK(h >= 0 && h <= H && H <= 63);
  return i >> (H - h);
}

/// \brief Floor of log2; requires v > 0.
inline int FloorLog2(uint64_t v) {
  BMEH_DCHECK(v > 0);
  return 63 - __builtin_clzll(v);
}

/// \brief Ceil of log2; requires v > 0. CeilLog2(1) == 0.
inline int CeilLog2(uint64_t v) {
  BMEH_DCHECK(v > 0);
  return (v == 1) ? 0 : FloorLog2(v - 1) + 1;
}

/// \brief True iff v is a power of two (v > 0).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// \brief 2^e as uint64 (e in [0, 63]).
inline uint64_t Pow2(int e) {
  BMEH_DCHECK(e >= 0 && e <= 63);
  return uint64_t{1} << e;
}

/// \brief Rebuilds a `width`-bit value: keeps bits [0, offset) of `v`, sets
/// bits [offset, offset+len) to `value`, and fills the remaining low bits
/// with ones (ones_below=true) or zeros.  Used to clamp range-query bounds
/// to a directory cell's region.
inline uint64_t ComposeBits(uint64_t v, int width, int offset, int len,
                            uint64_t value, bool ones_below) {
  BMEH_DCHECK(offset >= 0 && len >= 0 && offset + len <= width);
  const int below = width - offset - len;
  uint64_t out = 0;
  if (offset > 0) out = ExtractBits(v, width, 0, offset);
  out = (out << len) | value;
  out <<= below;
  if (ones_below && below > 0) out |= Pow2(below) - 1;
  return out;
}

/// \brief Reverses the low `width` bits of v (bit-reversal permutation).
uint64_t ReverseBits(uint64_t v, int width);

/// \brief Interleaves the bits of the components MSB-first (z-order /
/// Morton code over the first `width` bits of each of `d` components).
/// Used by tests as an independent oracle for order-preserving partitioning.
uint64_t MortonInterleave(const uint32_t* components, int d, int width);

}  // namespace bit_util
}  // namespace bmeh

#endif  // BMEH_COMMON_BIT_UTIL_H_
