// Result<T>: a value or a Status, in the spirit of arrow::Result.

#ifndef BMEH_COMMON_RESULT_H_
#define BMEH_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace bmeh {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status st) : v_(std::move(st)) {  // NOLINT(runtime/explicit)
    BMEH_CHECK(!status().ok()) << "Result constructed from OK Status";
  }

  /// \brief True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(v_); }

  /// \brief The status: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// \brief The value; dies if this Result holds an error.
  const T& ValueOrDie() const& {
    BMEH_CHECK(ok()) << "ValueOrDie on error Result: " << status();
    return std::get<T>(v_);
  }

  /// \brief Moves the value out; dies if this Result holds an error.
  T ValueOrDie() && {
    BMEH_CHECK(ok()) << "ValueOrDie on error Result: " << status();
    return std::move(std::get<T>(v_));
  }

  /// \brief The value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> v_;
};

}  // namespace bmeh

#endif  // BMEH_COMMON_RESULT_H_
