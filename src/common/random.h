// Deterministic pseudo-random number generation.
//
// Everything in the library that needs randomness takes an explicit Rng so
// tests and experiments are exactly reproducible across runs and platforms
// (std::mt19937_64 has a fixed cross-platform sequence; the distributions
// here avoid libstdc++-specific distribution implementations).

#ifndef BMEH_COMMON_RANDOM_H_
#define BMEH_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace bmeh {

/// \brief Deterministic RNG with platform-independent helper distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// \brief Uniform 64-bit value.
  uint64_t Next64() { return gen_(); }

  /// \brief Uniform integer in [0, bound) (bound > 0). Unbiased.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Standard normal variate (Box-Muller; deterministic).
  double NextGaussian();

  /// \brief Bernoulli(p).
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  std::mt19937_64 gen_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace bmeh

#endif  // BMEH_COMMON_RANDOM_H_
