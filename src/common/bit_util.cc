#include "src/common/bit_util.h"

namespace bmeh {
namespace bit_util {

uint64_t ReverseBits(uint64_t v, int width) {
  BMEH_DCHECK(width >= 0 && width <= 64);
  uint64_t out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | (v & 1);
    v >>= 1;
  }
  return out;
}

uint64_t MortonInterleave(const uint32_t* components, int d, int width) {
  BMEH_DCHECK(d >= 1 && width >= 0 && d * width <= 64);
  uint64_t out = 0;
  for (int bit = 0; bit < width; ++bit) {
    for (int j = 0; j < d; ++j) {
      out = (out << 1) |
            ExtractBits(components[j], 32, bit, 1);
    }
  }
  return out;
}

}  // namespace bit_util
}  // namespace bmeh
