#include "src/common/random.h"

#include <cmath>

#include "src/common/logging.h"

namespace bmeh {

uint64_t Rng::Uniform(uint64_t bound) {
  BMEH_DCHECK(bound > 0);
  // Rejection sampling for an unbiased result.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  BMEH_DCHECK(lo <= hi);
  if (lo == 0 && hi == ~uint64_t{0}) return Next64();
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace bmeh
