// Epoch-based memory reclamation for the optimistic read path.
//
// Writers never free a node or page that lock-free readers might still be
// traversing.  Instead they *retire* the object after unpublishing it; the
// epoch manager defers the actual delete until every reader that could
// have observed the old pointer has finished.
//
// Protocol (classic three-epoch EBR):
//  * A global epoch counter advances when every currently-active reader
//    has announced the current epoch.
//  * Readers wrap each optimistic operation in a Guard, which announces
//    the global epoch in a per-thread slot (cache-line padded) and clears
//    the announcement on exit.
//  * Retired objects are tagged with the global epoch at retire time and
//    freed once no active reader's announced epoch is <= that tag.
//
// Retiring is only safe once the object is unreachable from the published
// structure (the arena slot has been republished first) — readers entering
// *after* the retire can no longer find the object, and readers that found
// it earlier hold an epoch announcement that blocks its reclamation.

#ifndef BMEH_COMMON_EPOCH_H_
#define BMEH_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace bmeh {
namespace epoch {

/// \brief Aggregate counters for metrics exposition.
struct EpochStats {
  uint64_t retired_total = 0;    ///< Objects handed to Retire() ever.
  uint64_t reclaimed_total = 0;  ///< Objects actually freed ever.
  uint64_t deferred = 0;         ///< Objects currently parked in limbo.
  uint64_t advances_total = 0;   ///< Global epoch advances ever.
  uint64_t epoch = 0;            ///< Current global epoch.
};

class EpochManager;

/// \brief RAII epoch pin for one optimistic read operation.
///
/// While a Guard is live, no object retired at or after entry will be
/// freed.  Guards are cheap (two relaxed-ish atomic stores plus one
/// seq_cst fence worth of ordering) and may nest; only the outermost
/// level announces.
class Guard {
 public:
  explicit Guard(EpochManager* mgr);
  ~Guard();

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// \brief False when all kMaxThreads reader slots were taken: the guard
  /// pins nothing, so running an optimistic read under it would race
  /// reclamation.  Callers must treat an unpinned guard as a conflict and
  /// degrade to their locked fallback path instead.
  bool pinned() const { return slot_ != nullptr; }

 private:
  EpochManager* mgr_;
  void* slot_;       // ThreadSlot*, opaque here.
  bool announced_;   // False for nested guards.
};

/// \brief One reclamation domain.  Most code shares Global(); tests may
/// instantiate private managers.
class EpochManager {
 public:
  static constexpr int kMaxThreads = 256;

  EpochManager();
  ~EpochManager();  // Frees everything still in limbo unconditionally.

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// \brief Process-wide manager used by every store.  Never destroyed
  /// (function-local leaky singleton) so shutdown order cannot dangle.
  static EpochManager* Global();

  /// \brief Parks `obj` for deferred deletion via `deleter(obj)`.  The
  /// object must already be unreachable from any published structure.
  /// Thread-safe.
  void Retire(void* obj, void (*deleter)(void*));

  /// \brief Tries to advance the global epoch and frees every limbo
  /// object no active reader can still see.  Called by writers after
  /// each commit; safe from any thread.  Returns objects freed.
  uint64_t ReclaimSome();

  /// \brief ReclaimSome in a loop until limbo is empty or blocked by an
  /// active reader.  Used by store teardown and tests.
  void Drain();

  EpochStats Stats() const;

  // Implementation detail, public only for the thread-local slot registry
  // in epoch.cc.
  struct alignas(64) ThreadSlot {
    // kSlotFree: unowned; kSlotIdle: owned, no guard active; otherwise
    // the epoch announced by the active outermost guard.
    std::atomic<uint64_t> state;
    std::atomic<uint32_t> depth;  // Guard nesting, owner-thread only.
  };
  // Slots live in a shared block so a thread exiting *after* its manager
  // was destroyed can still release its slot safely.
  struct SlotBlock {
    ThreadSlot slots[kMaxThreads];
  };

 private:
  friend class Guard;

  struct LimboEntry {
    void* obj;
    void (*deleter)(void*);
    uint64_t tag;  // Global epoch at retire time.
  };

  /// Null when every slot is taken (kMaxThreads concurrent reader
  /// threads) — the caller's Guard stays unpinned rather than crashing.
  ThreadSlot* AcquireSlotForThisThread();

  const uint64_t id_;  // Unique per manager instance; never recycled.
  std::shared_ptr<SlotBlock> block_;
  std::atomic<uint64_t> global_epoch_{2};  // Start even and > sentinels' use.

  mutable std::mutex limbo_mu_;
  std::vector<LimboEntry> limbo_;

  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
  std::atomic<uint64_t> advances_total_{0};
  std::atomic<uint64_t> deferred_{0};
};

}  // namespace epoch
}  // namespace bmeh

#endif  // BMEH_COMMON_EPOCH_H_
