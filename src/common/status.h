// Status: lightweight error propagation for all fallible library paths.
//
// The library does not throw exceptions (database-engine idiom, cf. Arrow /
// RocksDB): every fallible operation returns a Status or a Result<T>, and
// callers propagate with BMEH_RETURN_NOT_OK / BMEH_ASSIGN_OR_RETURN.

#ifndef BMEH_COMMON_STATUS_H_
#define BMEH_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace bmeh {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalid = 1,        ///< Invalid argument or malformed request.
  kKeyError = 2,       ///< Key not found.
  kAlreadyExists = 3,  ///< Duplicate key on insert.
  kCapacityError = 4,  ///< A structural limit was exceeded.
  kIoError = 5,        ///< Underlying page store failure.
  kCorruption = 6,     ///< Structural invariant violated / bad on-disk data.
  kNotImplemented = 7, ///< Feature not available.
  kDataLoss = 8,       ///< Verified corruption: data is unrecoverable here.
  kResourceExhausted = 9,  ///< Out of pages/disk/memory; retryable.
  kUnavailable = 10,       ///< Routed to a down shard / service; retryable.
};

/// \brief Human-readable name of a StatusCode (e.g. "Invalid").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus a message.
///
/// An OK status carries no allocation; error states allocate a small
/// heap block holding the code and message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code (kOk when ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  bool IsInvalid() const { return code() == StatusCode::kInvalid; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCapacityError() const { return code() == StatusCode::kCapacityError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief True when the failed operation may simply be retried later and
  /// succeed, with no repair or recovery step in between.  This is a
  /// *guarantee* about the failing layer's state: an operation that fails
  /// transiently left every structure (in memory and on disk) exactly as it
  /// was before the call.  IoError is deliberately not transient — a failed
  /// write or fsync leaves the durable state unknown, so blind retry is not
  /// safe.  ResourceExhausted qualifies (the quota check rejects before any
  /// mutation), and so does Unavailable (the request never reached the down
  /// shard at all).
  bool IsTransient() const {
    return code() == StatusCode::kResourceExhausted ||
           code() == StatusCode::kUnavailable;
  }

  /// \brief The error message ("" when ok()).
  const std::string& message() const;

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& st);

}  // namespace bmeh

/// \brief Propagates a non-OK Status to the caller.
#define BMEH_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::bmeh::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define BMEH_CONCAT_IMPL(x, y) x##y
#define BMEH_CONCAT(x, y) BMEH_CONCAT_IMPL(x, y)

/// \brief Evaluates a Result<T> expression; on error returns the Status,
/// otherwise moves the value into `lhs`.
#define BMEH_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  BMEH_ASSIGN_OR_RETURN_IMPL(BMEH_CONCAT(_res_, __COUNTER__), lhs, rexpr)

#define BMEH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#endif  // BMEH_COMMON_STATUS_H_
