#include "src/common/epoch.h"

#include "src/common/logging.h"

namespace bmeh {
namespace epoch {
namespace {

constexpr uint64_t kSlotFree = ~uint64_t{0};
constexpr uint64_t kSlotIdle = ~uint64_t{0} - 1;

uint64_t NextManagerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread slot leases.  The shared_ptr keeps the slot block alive even
// when the manager is destroyed before the thread exits; manager ids are
// never recycled, so a stale lease can never be matched by a new manager.
struct SlotLease {
  uint64_t mgr_id;
  std::shared_ptr<EpochManager::SlotBlock> block;
  EpochManager::ThreadSlot* slot;
};

struct ThreadRegistry {
  std::vector<SlotLease> leases;
  ~ThreadRegistry() {
    // Thread death mid-epoch: an exiting thread cannot hold a live Guard
    // (Guards are scoped), so releasing the slot here is always safe.
    for (SlotLease& l : leases) {
      l.slot->state.store(kSlotFree, std::memory_order_release);
    }
  }
};

ThreadRegistry& Registry() {
  thread_local ThreadRegistry registry;
  return registry;
}

}  // namespace

EpochManager::EpochManager()
    : id_(NextManagerId()), block_(std::make_shared<SlotBlock>()) {
  for (ThreadSlot& s : block_->slots) {
    s.state.store(kSlotFree, std::memory_order_relaxed);
    s.depth.store(0, std::memory_order_relaxed);
  }
}

EpochManager::~EpochManager() {
  // No readers may be active at manager destruction; free limbo outright.
  std::lock_guard<std::mutex> lock(limbo_mu_);
  for (LimboEntry& e : limbo_) e.deleter(e.obj);
  reclaimed_total_.fetch_add(limbo_.size(), std::memory_order_relaxed);
  deferred_.store(0, std::memory_order_relaxed);
  limbo_.clear();
}

EpochManager* EpochManager::Global() {
  // Leaked deliberately: stores may be destroyed during static teardown
  // and must still be able to retire into a live manager.
  static EpochManager* g = new EpochManager();
  return g;
}

EpochManager::ThreadSlot* EpochManager::AcquireSlotForThisThread() {
  ThreadRegistry& reg = Registry();
  for (SlotLease& l : reg.leases) {
    if (l.mgr_id == id_) return l.slot;
  }
  for (int i = 0; i < kMaxThreads; ++i) {
    ThreadSlot& s = block_->slots[i];
    uint64_t expected = kSlotFree;
    if (s.state.compare_exchange_strong(expected, kSlotIdle,
                                        std::memory_order_acq_rel)) {
      s.depth.store(0, std::memory_order_relaxed);
      reg.leases.push_back(SlotLease{id_, block_, &s});
      return &s;
    }
  }
  // Every slot leased: degrade gracefully — the caller's Guard stays
  // unpinned and optimistic readers fall back to their locked path.  A
  // thread-per-request server sharing the Global() manager across many
  // stores can hit this legitimately; crashing would turn an overload
  // into an outage.
  return nullptr;
}

void EpochManager::Retire(void* obj, void (*deleter)(void*)) {
  const uint64_t tag = global_epoch_.load(std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    limbo_.push_back(LimboEntry{obj, deleter, tag});
  }
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  deferred_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t EpochManager::ReclaimSome() {
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  bool can_advance = true;
  for (int i = 0; i < kMaxThreads; ++i) {
    const uint64_t s = block_->slots[i].state.load(std::memory_order_seq_cst);
    if (s == kSlotFree || s == kSlotIdle) continue;
    if (s != e) {
      // A reader is still in an older epoch; it caps the global epoch at
      // s + 1, which keeps everything it could see out of reach below.
      can_advance = false;
      break;
    }
  }
  if (can_advance &&
      global_epoch_.compare_exchange_strong(e, e + 1,
                                            std::memory_order_seq_cst)) {
    advances_total_.fetch_add(1, std::memory_order_relaxed);
    e = e + 1;
  }

  // An entry tagged t is safe once e >= t + 2: advancing past t + 1
  // required every active reader to have left epoch t (and their slot
  // loads above synchronize with the readers' release on exit).
  std::vector<LimboEntry> ready;
  {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    size_t kept = 0;
    for (size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].tag + 2 <= e) {
        ready.push_back(limbo_[i]);
      } else {
        limbo_[kept++] = limbo_[i];
      }
    }
    limbo_.resize(kept);
  }
  for (LimboEntry& entry : ready) entry.deleter(entry.obj);
  const uint64_t freed = ready.size();
  if (freed > 0) {
    reclaimed_total_.fetch_add(freed, std::memory_order_relaxed);
    deferred_.fetch_sub(freed, std::memory_order_relaxed);
  }
  return freed;
}

void EpochManager::Drain() {
  // Two advances make every current entry eligible; a few extra rounds
  // cover entries retired while draining.  Blocked readers end the loop.
  for (int round = 0; round < 8; ++round) {
    if (deferred_.load(std::memory_order_relaxed) == 0) return;
    ReclaimSome();
  }
}

EpochStats EpochManager::Stats() const {
  EpochStats s;
  s.retired_total = retired_total_.load(std::memory_order_relaxed);
  s.reclaimed_total = reclaimed_total_.load(std::memory_order_relaxed);
  s.deferred = deferred_.load(std::memory_order_relaxed);
  s.advances_total = advances_total_.load(std::memory_order_relaxed);
  s.epoch = global_epoch_.load(std::memory_order_relaxed);
  return s;
}

Guard::Guard(EpochManager* mgr) : mgr_(mgr), slot_(nullptr), announced_(false) {
  EpochManager::ThreadSlot* slot = mgr_->AcquireSlotForThisThread();
  if (slot == nullptr) return;  // Slots exhausted: unpinned (see pinned()).
  slot_ = slot;
  const uint32_t depth = slot->depth.load(std::memory_order_relaxed);
  slot->depth.store(depth + 1, std::memory_order_relaxed);
  if (depth > 0) return;  // Nested: outer guard already announced.
  announced_ = true;
  uint64_t e = mgr_->global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot->state.store(e, std::memory_order_seq_cst);
    const uint64_t now = mgr_->global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;  // Announcement observed a stable epoch.
    e = now;
  }
}

Guard::~Guard() {
  if (slot_ == nullptr) return;  // Unpinned: nothing was announced.
  auto* slot = static_cast<EpochManager::ThreadSlot*>(slot_);
  const uint32_t depth = slot->depth.load(std::memory_order_relaxed);
  slot->depth.store(depth - 1, std::memory_order_relaxed);
  if (!announced_) return;
  // Release: everything this reader did happens-before a reclaimer that
  // observes the slot as idle.
  slot->state.store(kSlotIdle, std::memory_order_release);
}

}  // namespace epoch
}  // namespace bmeh
