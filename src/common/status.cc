#include "src/common/status.h"

namespace bmeh {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCapacityError:
      return "CapacityError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(new State{code, std::move(msg)}) {}

Status::Status(const Status& other)
    : state_(other.state_ ? new State(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_.reset(other.state_ ? new State(*other.state_) : nullptr);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace bmeh
