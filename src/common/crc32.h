// CRC32 (IEEE 802.3 polynomial, reflected) for on-disk integrity checks.
//
// Used by the write-ahead log to detect torn or partially written records
// after a crash: every WAL record carries the checksum of its body, and
// replay stops at the first record whose checksum does not match.  The
// implementation is a plain table-driven byte-at-a-time loop — WAL records
// are tens of bytes, so there is nothing to win from slicing variants.

#ifndef BMEH_COMMON_CRC32_H_
#define BMEH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace bmeh {

/// \brief CRC32 of `n` bytes at `data`, continuing from `seed`.
///
/// `seed` lets callers fold extra context (e.g. a record's page offset)
/// into the checksum so that stale bytes that happen to hold an old valid
/// record do not verify at a new position.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace bmeh

#endif  // BMEH_COMMON_CRC32_H_
