// Minimal logging / invariant-check macros.
//
// BMEH_CHECK(cond)   — always-on invariant check; aborts with a message.
// BMEH_DCHECK(cond)  — compiled out in NDEBUG builds.
// BMEH_LOG(level)    — stream-style logging to the text sink (stderr by
//                      default), optionally mirrored as JSON lines.
//
// Sinks.  A LogSink consumes whole lines atomically: WriteLine() must
// emit the line plus its terminator in one piece, so lines written from
// different threads never interleave.  Two process-wide sinks exist:
//
//   * the text sink (default: stderr) receives the classic
//     "[LEVEL file:line] msg" rendering of every emitted BMEH_LOG;
//   * the optional JSON sink receives the same messages as one JSON
//     object per line ({"level","file","line","msg"}) and is also the
//     sink type the structured op-log (src/obs/oplog.h) writes through,
//     so human logs and machine wide-events can share one file.
//
// Both sinks may be installed at once; each receives every line intact
// (FileLineSink serializes WriteLine under its own mutex).

#ifndef BMEH_COMMON_LOGGING_H_
#define BMEH_COMMON_LOGGING_H_

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

namespace bmeh {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief A thread-safe consumer of whole log lines.  WriteLine must be
/// atomic per call: concurrent writers may interleave *lines* but never
/// the bytes within one line.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// \brief Emits `line` (no trailing newline) plus a newline, atomically.
  virtual void WriteLine(std::string_view line) = 0;
};

/// \brief LogSink over a FILE*: one fwrite of line + '\n' per call under
/// an internal mutex, flushed immediately so a crash loses no lines.
class FileLineSink : public LogSink {
 public:
  /// \brief Wraps a stream the caller keeps open (e.g. stderr).
  explicit FileLineSink(std::FILE* stream);
  /// \brief Opens `path` for append; nullptr when the open fails.
  static std::unique_ptr<FileLineSink> OpenAppend(const std::string& path);
  ~FileLineSink() override;

  void WriteLine(std::string_view line) override;

  /// \brief Lines written so far (test/introspection; racy reads fine).
  uint64_t lines_written() const;

 private:
  FileLineSink(std::FILE* stream, bool owned);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Escapes `s` for embedding inside a JSON string literal:
/// backslash, double quote and all control characters (\n, \t, \r
/// natively, the rest as \u00XX).
std::string JsonEscape(std::string_view s);

namespace internal {

/// Collects a message and emits it (to the installed sinks) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* cond, const char* file, int line);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

/// \brief Sets the minimum level that BMEH_LOG actually emits.
/// Defaults to kWarning so tests/benches stay quiet.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// \brief Replaces the plain-text sink (nullptr restores stderr).
void SetTextLogSink(std::shared_ptr<LogSink> sink);

/// \brief Installs a JSON mirror: every emitted BMEH_LOG message is also
/// written to `sink` as {"level":...,"file":...,"line":...,"msg":...}.
/// nullptr (the default) disables the mirror.
void SetJsonLogSink(std::shared_ptr<LogSink> sink);

}  // namespace bmeh

#define BMEH_LOG(level)                                          \
  ::bmeh::internal::LogMessage(::bmeh::LogLevel::k##level, __FILE__, __LINE__)

#define BMEH_CHECK(cond)                                               \
  if (!(cond))                                                         \
  ::bmeh::internal::FatalMessage(#cond, __FILE__, __LINE__)

#define BMEH_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::bmeh::Status _st_check = (expr);                                 \
    BMEH_CHECK(_st_check.ok()) << _st_check.ToString();                \
  } while (false)

#ifdef NDEBUG
#define BMEH_DCHECK(cond) \
  if (false) ::bmeh::internal::FatalMessage(#cond, __FILE__, __LINE__)
#else
#define BMEH_DCHECK(cond) BMEH_CHECK(cond)
#endif

#endif  // BMEH_COMMON_LOGGING_H_
