// Minimal logging / invariant-check macros.
//
// BMEH_CHECK(cond)   — always-on invariant check; aborts with a message.
// BMEH_DCHECK(cond)  — compiled out in NDEBUG builds.
// BMEH_LOG(level)    — stream-style logging to stderr.

#ifndef BMEH_COMMON_LOGGING_H_
#define BMEH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bmeh {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

/// Collects a message and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* cond, const char* file, int line);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

/// \brief Sets the minimum level that BMEH_LOG actually emits.
/// Defaults to kWarning so tests/benches stay quiet.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace bmeh

#define BMEH_LOG(level)                                          \
  ::bmeh::internal::LogMessage(::bmeh::LogLevel::k##level, __FILE__, __LINE__)

#define BMEH_CHECK(cond)                                               \
  if (!(cond))                                                         \
  ::bmeh::internal::FatalMessage(#cond, __FILE__, __LINE__)

#define BMEH_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::bmeh::Status _st_check = (expr);                                 \
    BMEH_CHECK(_st_check.ok()) << _st_check.ToString();                \
  } while (false)

#ifdef NDEBUG
#define BMEH_DCHECK(cond) \
  if (false) ::bmeh::internal::FatalMessage(#cond, __FILE__, __LINE__)
#else
#define BMEH_DCHECK(cond) BMEH_CHECK(cond)
#endif

#endif  // BMEH_COMMON_LOGGING_H_
