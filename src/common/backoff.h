// Backoff: bounded retry budget with decorrelated jitter.
//
// A Backoff instance captures one logical operation's retry state: how many
// attempts have been made, how long the caller has slept so far, and when to
// give up.  The delay sequence follows the "decorrelated jitter" scheme
// (next delay drawn uniformly from [base, min(cap, 3 * previous)]), which
// spreads concurrent retriers apart instead of synchronizing them the way
// plain exponential backoff does.  All randomness comes from the repo's
// deterministic Rng so tests replay exactly from a seed.
//
// Usage:
//   Backoff backoff(policy, seed);
//   for (;;) {
//     Status st = op();
//     if (!backoff.ShouldRetry(st)) return st;
//     SleepMicros(backoff.NextDelayUs());
//   }

#ifndef BMEH_COMMON_BACKOFF_H_
#define BMEH_COMMON_BACKOFF_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/common/random.h"
#include "src/common/status.h"

namespace bmeh {

/// \brief Replacement for the real sleep in retry paths: receives the
/// delay that would have been slept, in microseconds.
using SleepHook = void (*)(uint64_t delay_us);

namespace internal {
/// Process-wide sleep hook (null = real sleep).  Inline so the header
/// stays self-contained; atomic so a test can install it while retry
/// threads run.
inline std::atomic<SleepHook> g_sleep_hook{nullptr};
}  // namespace internal

/// \brief Installs `hook` as the process-wide replacement for SleepUs's
/// real sleep (nullptr restores real sleeping).  Lets backoff tests and
/// the chaos harness's retry paths run at full speed while still
/// observing every delay the policy would have imposed.
inline void SetSleepHookForTesting(SleepHook hook) {
  internal::g_sleep_hook.store(hook, std::memory_order_release);
}

/// \brief Sleeps `delay_us` microseconds — or hands the delay to the
/// installed test hook instead of sleeping.  Every retry path sleeps
/// through this seam so no test has to real-sleep a backoff schedule.
inline void SleepUs(uint64_t delay_us) {
  const SleepHook hook =
      internal::g_sleep_hook.load(std::memory_order_acquire);
  if (hook != nullptr) {
    hook(delay_us);
    return;
  }
  if (delay_us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

/// \brief Tunables for a bounded retry loop.  The defaults suit an
/// interactive store call: a handful of attempts, sub-millisecond first
/// delay, and a total sleep budget well under a second.
struct BackoffPolicy {
  /// Total tries including the first one; <= 1 disables retry entirely.
  int max_attempts = 4;
  /// First delay and lower bound of every jittered draw, in microseconds.
  uint64_t base_delay_us = 100;
  /// Upper bound of any single delay, in microseconds.
  uint64_t max_delay_us = 10000;
  /// Cap on cumulative sleep time, in microseconds (0 = no budget cap).
  /// Once the caller has slept this long, ShouldRetry refuses further tries.
  uint64_t total_budget_us = 100000;
};

/// \brief Per-operation retry state machine (not thread-safe; create one
/// per logical operation).
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// \brief Decides whether the caller should sleep and try again after
  /// observing `st`.  Only transient statuses are retried — IsTransient()
  /// guarantees the failed attempt left all state untouched, which is what
  /// makes a blind retry safe.
  bool ShouldRetry(const Status& st) const {
    if (st.ok() || !st.IsTransient()) return false;
    if (attempts_ + 1 >= policy_.max_attempts) return false;
    if (policy_.total_budget_us != 0 && waited_us_ >= policy_.total_budget_us) {
      return false;
    }
    return true;
  }

  /// \brief Draws the next sleep duration (microseconds), charges it to the
  /// budget, and advances the attempt counter.  Call only after ShouldRetry
  /// returned true.
  uint64_t NextDelayUs() {
    const uint64_t base = std::max<uint64_t>(policy_.base_delay_us, 1);
    const uint64_t cap = std::max(policy_.max_delay_us, base);
    // Decorrelated jitter: uniform in [base, min(cap, 3 * previous)].
    const uint64_t prev = prev_delay_us_ == 0 ? base : prev_delay_us_;
    const uint64_t hi = std::min(cap, prev > cap / 3 ? cap : prev * 3);
    uint64_t delay = rng_.UniformRange(base, std::max(hi, base));
    if (policy_.total_budget_us != 0) {
      const uint64_t remaining = policy_.total_budget_us - waited_us_;
      delay = std::min(delay, remaining);
    }
    prev_delay_us_ = delay;
    waited_us_ += delay;
    ++attempts_;
    return delay;
  }

  /// \brief Retries consumed so far (0 before the first NextDelayUs).
  int attempts() const { return attempts_; }

  /// \brief Cumulative sleep time charged so far, in microseconds.
  uint64_t waited_us() const { return waited_us_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
  uint64_t prev_delay_us_ = 0;
  uint64_t waited_us_ = 0;
};

}  // namespace bmeh

#endif  // BMEH_COMMON_BACKOFF_H_
