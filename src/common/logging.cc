#include "src/common/logging.h"

#include <cstdlib>
#include <iostream>

namespace bmeh {

namespace {
LogLevel g_threshold = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }
LogLevel GetLogThreshold() { return g_threshold; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(g_threshold)) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalMessage::FatalMessage(const char* cond, const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << cond
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace bmeh
