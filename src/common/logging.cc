#include "src/common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace bmeh {

namespace {

LogLevel g_threshold = LogLevel::kWarning;

/// Sink registration is mutex-guarded; emitters copy the shared_ptr under
/// the lock and write outside it, so a sink swap never races a write.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

std::shared_ptr<LogSink>& TextSinkSlot() {
  static std::shared_ptr<LogSink> sink;
  return sink;
}

std::shared_ptr<LogSink>& JsonSinkSlot() {
  static std::shared_ptr<LogSink> sink;
  return sink;
}

std::shared_ptr<LogSink> GetTextSink() {
  std::lock_guard lock(SinkMutex());
  return TextSinkSlot();
}

std::shared_ptr<LogSink> GetJsonSink() {
  std::lock_guard lock(SinkMutex());
  return JsonSinkSlot();
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold = level; }
LogLevel GetLogThreshold() { return g_threshold; }

void SetTextLogSink(std::shared_ptr<LogSink> sink) {
  std::lock_guard lock(SinkMutex());
  TextSinkSlot() = std::move(sink);
}

void SetJsonLogSink(std::shared_ptr<LogSink> sink) {
  std::lock_guard lock(SinkMutex());
  JsonSinkSlot() = std::move(sink);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// FileLineSink
// ---------------------------------------------------------------------------

struct FileLineSink::Impl {
  std::FILE* stream = nullptr;
  bool owned = false;
  std::mutex mu;
  std::atomic<uint64_t> lines{0};
};

FileLineSink::FileLineSink(std::FILE* stream) : FileLineSink(stream, false) {}

FileLineSink::FileLineSink(std::FILE* stream, bool owned)
    : impl_(std::make_unique<Impl>()) {
  impl_->stream = stream;
  impl_->owned = owned;
}

std::unique_ptr<FileLineSink> FileLineSink::OpenAppend(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return nullptr;
  return std::unique_ptr<FileLineSink>(new FileLineSink(f, /*owned=*/true));
}

FileLineSink::~FileLineSink() {
  if (impl_->owned && impl_->stream != nullptr) std::fclose(impl_->stream);
}

void FileLineSink::WriteLine(std::string_view line) {
  // One buffer, one fwrite, under the sink mutex: concurrent writers can
  // interleave lines but never the bytes inside one.
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line.data(), line.size());
  buf.push_back('\n');
  std::lock_guard lock(impl_->mu);
  std::fwrite(buf.data(), 1, buf.size(), impl_->stream);
  std::fflush(impl_->stream);
  impl_->lines.fetch_add(1, std::memory_order_relaxed);
}

uint64_t FileLineSink::lines_written() const {
  return impl_->lines.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_threshold)) return;
  if (auto text = GetTextSink(); text != nullptr) {
    text->WriteLine(stream_.str());
  } else {
    std::cerr << stream_.str() << std::endl;
  }
  if (auto json = GetJsonSink(); json != nullptr) {
    // The text rendering carries a "[LEVEL file:line] " prefix; strip it
    // so the JSON mirror holds the bare message.
    std::string full = stream_.str();
    const size_t bracket = full.find("] ");
    const std::string msg =
        bracket == std::string::npos ? full : full.substr(bracket + 2);
    std::string line = "{\"level\":\"";
    line += LevelName(level_);
    line += "\",\"file\":\"";
    line += JsonEscape(file_);
    line += "\",\"line\":";
    line += std::to_string(line_);
    line += ",\"msg\":\"";
    line += JsonEscape(msg);
    line += "\"}";
    json->WriteLine(line);
  }
}

FatalMessage::FatalMessage(const char* cond, const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << cond
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace bmeh
