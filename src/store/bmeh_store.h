// BmehStore: an embedded, durable record store built on the BMEH-tree and
// the POSIX page-store substrate — what a downstream user adopts when they
// want the paper's structure as a small database file rather than an
// in-memory index.
//
// Durability model: checkpoints + write-ahead log.
//
//  * Checkpoints.  The whole tree is serialized into a fresh page chain;
//    a single superblock page (a fixed page id right after the store
//    header) is then rewritten to point at the new chain, and the old
//    chain's pages are returned to the free list.  The superblock write
//    is one page-sized pwrite, so a crash leaves the store at either the
//    old or the new checkpoint, never in between.
//
//  * Write-ahead log.  Every mutation between checkpoints is appended to
//    a page-chain log (src/store/wal.h) *before* it is applied to the
//    in-memory tree, with a per-record CRC.  The superblock carries the
//    log's head page, so the same atomic flip that publishes a checkpoint
//    also resets the log.  Open() replays the log on top of the last
//    checkpoint, restoring the tree to the last logged mutation; a torn
//    tail (half-written record after a crash) is detected by CRC and
//    discarded.  Fsyncs are batched via StoreOptions::wal_sync_every:
//    with the default of 1 every acknowledged mutation is durable; with
//    larger values (or 0) up to that many acknowledged mutations may be
//    lost on a crash — but recovery always yields a clean *prefix* of
//    the acknowledged history, never a torn or reordered state.
//
//  * Batched writes.  WriteBatch / InsertBatch / DeleteBatch encode many
//    mutations into one WAL batch chain (begin/commit framed), apply them
//    under one lock acquisition and acknowledge them with one fsync;
//    recovery sees the whole batch or none of it.  The optional
//    group-commit mode (StoreOptions::group_commit_window_us) coalesces
//    concurrent single-record writers onto that same path via a dedicated
//    commit thread.  See DESIGN.md §7.
//
// Recovery invariants (exercised exhaustively by tests/crash_matrix_test):
//  1. Open() after any crash yields a tree that Validate()s and whose
//     contents equal the checkpoint image plus a prefix of the logged
//     mutations.
//  2. The prefix includes every mutation covered by a completed sync.
//  3. The free list is rebuilt from reachability (superblock + image
//     chain + log chain), so pages leaked by a crashed checkpoint or a
//     torn log tail are reclaimed on the next Open() rather than lost.

#ifndef BMEH_STORE_BMEH_STORE_H_
#define BMEH_STORE_BMEH_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/bmeh_tree.h"
#include "src/obs/oplog.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/pagestore/page_store.h"
#include "src/store/wal.h"

namespace bmeh {

class GroupCommitter;

/// \brief Configuration for opening / creating a store file.
struct StoreOptions {
  /// Key shape; must match the file's when opening an existing store.
  KeySchema schema{2, 31};
  /// Tree parameters, used only when creating a fresh store.
  TreeOptions tree = TreeOptions::Make(2, 16);
  /// Page size of a newly created file.
  int page_size = kDefaultPageSize;
  /// Checkpoint automatically after this many mutations (0 = manual).
  uint64_t checkpoint_every = 0;
  /// Optimistic lock-free reads: Get/Range descend the tree's published
  /// structure validating per-node version words (even = stable, odd =
  /// write in progress), retry on conflict with bounded backoff, and fall
  /// back to the shared lock under persistent churn; replaced nodes are
  /// reclaimed through the process-wide epoch manager so readers never
  /// touch freed memory.  Critically, readers no longer wait out a
  /// writer's WAL fsync.  Automatically disabled on stores that open
  /// degraded (quarantined buckets keep the strict locked path).  See
  /// DESIGN.md §13.
  bool optimistic_reads = true;
  /// Fsync the WAL after this many appended records.  1 (the default)
  /// makes every acknowledged mutation durable; larger values trade a
  /// bounded window of recent mutations for fewer fsyncs; 0 syncs only
  /// at checkpoints.
  uint64_t wal_sync_every = 1;
  /// Open a store whose pages fail checksum verification in degraded mode
  /// (quarantined buckets, DataLoss answers, checkpoints refused — see
  /// RecoveryReport) instead of failing the open.  With false, any
  /// verified corruption makes Open() fail with DataLoss.
  bool tolerate_corruption = true;
  /// Cap the underlying page store at this many total pages, header
  /// included (0 = unlimited).  Once the cap is reached, mutations that
  /// need fresh pages fail with Status::ResourceExhausted — cleanly:
  /// the store stays consistent and serviceable, the failed operation is
  /// fully rolled back, and the same call succeeds after the cap is
  /// raised (reopen with a larger value) or space is freed.  Models a
  /// disk-quota deployment and makes the real ENOSPC path testable.
  uint64_t max_pages = 0;
  /// Background group commit: when > 0, Put()/Delete() hand their record
  /// to a dedicated commit thread that coalesces concurrent writers into
  /// one WAL batch chain and one fsync, lingering up to this many
  /// microseconds for companions before committing.  Callers block until
  /// their record is durable and receive its individual status.  Reads
  /// (Get/Range) and explicit batch writes stay safe to call from any
  /// thread while the mode is on.  0 (the default) keeps the synchronous
  /// owner-threaded write path.
  uint64_t group_commit_window_us = 0;
  /// Pending-record bound of the group-commit queue; a submission that
  /// finds it full fails with Status::ResourceExhausted — the same
  /// retryable backpressure contract as a page-quota refusal.
  size_t group_commit_queue_depth = 1024;
  /// Largest coalesced batch the commit thread applies at once.
  size_t group_commit_max_batch = 256;
  /// Observability (optional; both must outlive the store).  With a
  /// registry attached the store charges `store_*_total` counters and
  /// latency histograms around every public operation, wires the page
  /// device (`pagestore_*`, page I/O latency) and the tree's split
  /// cascade, and registers a sampled source for tree / WAL / logical-I/O
  /// state — including WAL replay counters, which start charging during
  /// Open().  With a tracer attached every operation also records a
  /// scoped span.  Null (the default) costs one branch per charge site.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Prefix for this store's *sampled* metric names (e.g. "shard3_" makes
  /// the source publish shard3_tree_records instead of tree_records).
  /// Required when several stores share one registry: snapshot sources
  /// assign by name, so unlabeled sources would silently overwrite each
  /// other.  Shared Counter / Histogram handles are never prefixed — they
  /// are single objects that aggregate across stores by construction.
  std::string metrics_label;
  /// Wide-event operation log (optional; must outlive the store).  Every
  /// public operation emits one correlated JSON line — trace_id, op,
  /// shard, status, latency, LSN — subject to the log's sampling policy.
  /// Null (the default) costs one branch per op.
  obs::OpLog* oplog = nullptr;
  /// Commit-path stall watchdog (optional; must outlive the store).  The
  /// group-commit thread registers a heartbeat named
  /// "<metrics_label>group_commit" and the checkpoint path arms
  /// "<metrics_label>checkpoint" around each image write, so a stuck
  /// fsync flips /healthz degraded instead of hanging silently.
  obs::Watchdog* watchdog = nullptr;
  /// Heartbeat deadline for the watchdog registrations above.
  uint64_t watchdog_deadline_ms = 5000;
  /// Shard ordinal stamped on this store's wide events (-1 = unsharded).
  int shard_index = -1;
  /// WAL archiving: when non-empty, every checkpoint first seals the
  /// records it is about to truncate into a CRC-sealed segment file
  /// (`wal-<lo_lsn>.seg`) in this directory, written before the publish
  /// flip so the archive never misses a truncated record.  An archive
  /// write failure fails the checkpoint (the log is kept).  Empty (the
  /// default) disables archiving.
  std::string wal_archive_dir;
};

/// \brief What corruption, if any, the last Open() had to work around.
///
/// A degraded store stays useful for triage and salvage but never lies:
/// queries whose true answer may have been destroyed return DataLoss, and
/// Checkpoint() is refused so the damage cannot be laundered into a
/// clean-looking image (use SalvageStore / `bmeh_cli fsck --repair`).
struct RecoveryReport {
  /// Any verified corruption was encountered while opening.
  bool degraded = false;
  /// The superblock failed verification: both chain heads are gone and
  /// nothing could be recovered (implies image_lost).
  bool superblock_lost = false;
  /// The checkpoint image's directory could not be rebuilt; only
  /// WAL-replayed records are visible and missing keys answer DataLoss.
  bool image_lost = false;
  /// The image chain was cut by a verified-corrupt page (when the
  /// directory still parsed, the cut cost only quarantined buckets).
  bool image_data_loss = false;
  /// WAL replay stopped at a verified-corrupt page: acknowledged
  /// mutations beyond the cut are lost, so missing keys answer DataLoss.
  bool wal_data_loss = false;
  /// Buckets whose records were lost (see BmehTree::quarantined_pages).
  uint64_t quarantined_buckets = 0;
};

/// \brief Summary of a store file's durable state (see BmehStore::Inspect).
struct StoreInfo {
  uint64_t generation = 0;
  PageId image_head = kInvalidPageId;
  PageId wal_head = kInvalidPageId;
  uint64_t wal_records = 0;
  uint64_t wal_pages = 0;
  /// LSN of the first record in the current WAL incarnation (1 for a
  /// store that never checkpointed; see Wal::base_lsn).
  uint64_t wal_base_lsn = 1;
  /// Highest LSN ever assigned to a committed mutation (0 = none yet).
  uint64_t durable_lsn = 0;
  uint64_t records = 0;  ///< Records after WAL replay.
  uint64_t page_count = 0;
  uint64_t live_pages = 0;
  int page_size = 0;
  /// On-disk page format: 1 = legacy unverified, 2 = self-checksumming.
  int format_version = 0;
  /// Pages neither live nor the header — allocatable without growing the
  /// file, so the first thing a quota-constrained deployment reclaims.
  uint64_t free_pages = 0;
  /// High-water allocation mark: the most pages ever simultaneously live
  /// as far as the inspecting handle can tell (at rest, the current live
  /// count) — the smallest max_pages quota that would never refuse.
  uint64_t high_water_pages = 0;
  /// Runtime resource state of the inspecting handle; nonzero only when a
  /// quota was configured or allocations were refused this process.
  uint64_t max_pages = 0;  ///< 0 = unlimited.
  uint64_t reserved_pages = 0;
  uint64_t alloc_failures = 0;
  /// Integrity counters of the inspecting handle's page device (the
  /// PR-2/PR-3 hardening story in one place): read attempts repeated
  /// after transient errors, page-trailer verifications that failed, and
  /// buckets quarantined after verified corruption.
  uint64_t read_retries = 0;
  uint64_t checksum_failures = 0;
  uint64_t pages_quarantined = 0;
};

/// \brief Builder for a set of mutations applied by BmehStore::Write as
/// one durable unit: a single WAL record chain, one lock acquisition, one
/// fsync — and all-or-nothing visibility after a crash.
class WriteBatch {
 public:
  void Put(const PseudoKey& key, uint64_t payload) {
    records_.push_back({Wal::kOpInsert, key, payload});
  }
  void Delete(const PseudoKey& key) {
    records_.push_back({Wal::kOpDelete, key, 0});
  }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }
  const std::vector<Wal::LogRecord>& records() const { return records_; }

 private:
  std::vector<Wal::LogRecord> records_;
};

/// \brief A durable multidimensional record store.
class BmehStore {
 public:
  /// Attempts per optimistic read before falling back to the shared lock.
  static constexpr int kOlcReadAttempts = 4;

  ~BmehStore();
  BmehStore(const BmehStore&) = delete;
  BmehStore& operator=(const BmehStore&) = delete;

  /// \brief Opens `path`, creating a fresh store when the file does not
  /// exist.  When opening an existing file the persisted schema must
  /// equal options.schema.  Reopening after a crash replays the WAL and
  /// rebuilds the page free list from reachability.
  static Result<std::unique_ptr<BmehStore>> Open(const std::string& path,
                                                 const StoreOptions& options);

  /// \brief Opens a store over an arbitrary PageStore (in-memory, fault
  /// injecting, ...).  A store with no live pages is initialized fresh;
  /// otherwise the superblock is read and the WAL replayed.  Unlike the
  /// path overload this performs no free-list recovery — file-backed
  /// crash recovery should go through Open(path, options).
  static Result<std::unique_ptr<BmehStore>> Open(
      std::unique_ptr<PageStore> store, const StoreOptions& options);

  /// \brief Reads the durable state of a store file without mutating it.
  static Result<StoreInfo> Inspect(const std::string& path);

  /// \brief Inserts a record (AlreadyExists on duplicates).
  Status Put(const PseudoKey& key, uint64_t payload);

  /// \brief Exact-match lookup.
  Result<uint64_t> Get(const PseudoKey& key);

  /// \brief Deletes a record (KeyError when absent).
  Status Delete(const PseudoKey& key);

  /// \brief Applies `batch` as one durable unit: every mutation is
  /// encoded into a single WAL batch chain, applied under one lock
  /// acquisition, and covered by one fsync.  Crash atomicity is
  /// all-or-nothing: recovery sees either the whole batch or none of it,
  /// never a prefix.
  ///
  /// Outcomes: OK when every member applied cleanly.  A deterministic
  /// logical no-op (duplicate insert, delete of an absent key) does not
  /// void the batch — the batch still commits durably and the first such
  /// status is returned; pass `per_record` for each member's individual
  /// outcome.  ResourceExhausted means nothing was written (rolled back,
  /// retryable).  Any other failure poisons the store.
  Status Write(const WriteBatch& batch,
               std::vector<Status>* per_record = nullptr);

  /// \brief Batched insert convenience over Write() — same contract.
  Status InsertBatch(std::span<const Record> recs);

  /// \brief Batched delete convenience over Write() — same contract.
  Status DeleteBatch(std::span<const PseudoKey> keys);

  /// \brief Partial-range query.
  Status Range(const RangePredicate& pred, std::vector<Record>* out);

  /// \brief Writes a durable checkpoint (atomic superblock flip), fsyncs
  /// the file, and truncates the WAL.  Any IO or fsync failure is
  /// reported as a non-OK Status; after a failed publish the store
  /// refuses further mutations (the on-disk state is no longer known to
  /// be coherent with memory).
  Status Checkpoint();

  /// \brief Mutations since the last successful checkpoint.  Like
  /// wal_records() and generation(), owner-synchronized: in group-commit
  /// mode read it only at quiescence (no Submit in flight).
  uint64_t dirty_ops() const { return dirty_ops_; }

  /// \brief Records currently in the write-ahead log.
  uint64_t wal_records() const { return wal_->record_count(); }

  /// \brief Monotone checkpoint generation (0 for a fresh store).
  uint64_t generation() const { return generation_; }

  /// \brief LSN of the first record in the current WAL incarnation;
  /// everything below it is folded into the checkpoint image.
  uint64_t wal_base_lsn() const { return wal_->base_lsn(); }

  /// \brief Highest LSN assigned to a committed mutation (0 for a store
  /// that never logged one).  Owner-synchronized like dirty_ops().
  uint64_t durable_lsn() const { return wal_->next_lsn() - 1; }

  /// \brief Consistent view of the store captured for an online backup:
  /// the published checkpoint chain plus every WAL record, with LSNs.
  /// Taken under the operation lock in one brief critical section; the
  /// image pages are then copied page-at-a-time via ReadPageForBackup()
  /// while writers keep committing.
  struct BackupSnapshot {
    PageId image_head = kInvalidPageId;
    uint64_t generation = 0;
    /// First LSN not covered by the image (== wal_base_lsn at capture).
    uint64_t base_lsn = 1;
    /// Highest LSN in the snapshot (base_lsn - 1 when the WAL is empty).
    uint64_t watermark = 0;
    std::vector<PageId> image_pages;
    std::vector<Wal::LogRecord> wal_records;
  };

  /// \brief Starts an online backup: captures a BackupSnapshot and pins
  /// the captured chains — checkpoints that would free the snapshot's
  /// image or WAL pages defer those frees until EndBackup().  Every
  /// successful BeginBackup() must be paired with EndBackup().  Refused
  /// on a degraded or poisoned store (the copy could not be trusted).
  Result<BackupSnapshot> BeginBackup();

  /// \brief Copies one page of a pinned snapshot under a shared lock, so
  /// concurrent writers are paused only per page, not per backup.
  Status ReadPageForBackup(PageId id, std::vector<uint8_t>* out);

  /// \brief Releases the pin taken by BeginBackup() and performs any
  /// page frees a checkpoint deferred while the backup ran.
  void EndBackup();

  /// \brief What corruption the open had to work around (all-false for a
  /// healthy store).
  const RecoveryReport& recovery_report() const { return report_; }

  /// \brief True when the open encountered verified corruption; see
  /// RecoveryReport for degraded-mode semantics.
  bool degraded() const { return report_.degraded; }

  /// \brief The underlying in-memory tree (read-mostly introspection).
  const BmehTree& tree() const { return *tree_; }
  BmehTree* mutable_tree() { return tree_.get(); }

  /// \brief True when Get/Range run the lock-free optimistic path (see
  /// StoreOptions::optimistic_reads; false on degraded stores).
  bool optimistic_reads_enabled() const { return olc_enabled_; }

  /// \brief The underlying page device (introspection / test assertions).
  const PageStore& page_store() const { return *store_; }
  PageStore* mutable_page_store() { return store_.get(); }

  /// \brief One consistent sample of the store's sampled-gauge state,
  /// taken under the operation lock (shared) so it is safe to call
  /// concurrently with a group-commit thread or writers on other stores.
  struct SampledState {
    uint64_t records = 0;
    int height = 0;
    uint64_t wal_records = 0;
    uint64_t dirty_ops = 0;
    uint64_t generation = 0;
    uint64_t wal_base_lsn = 1;
    uint64_t durable_lsn = 0;
  };
  SampledState SampleStateForMetrics() const;

  const KeySchema& schema() const { return tree_->schema(); }

  /// \brief Testing hook: skip publishing the next checkpoint's
  /// superblock, simulating a crash after the image write.
  void SimulateCrashBeforePublishForTesting() {
    crash_before_publish_ = true;
  }

  /// \brief Testing hook: poisons the store so the destructor performs no
  /// final checkpoint — the on-disk state stays exactly as the last
  /// acknowledged operation left it, as after a process crash.
  void SimulateCrashForTesting() {
    poisoned_ = Status::IoError("simulated crash");
  }

  /// \brief Testing hook: spins for `ns` inside every subsequent public
  /// operation (after the real work, inside its latency measurement) so
  /// the oplog's slow-op override can be exercised deterministically.
  void InjectOpDelayForTesting(uint64_t ns) {
    inject_op_delay_ns_.store(ns, std::memory_order_relaxed);
  }

  /// \brief Testing hook: freezes / thaws the group-commit thread (no-op
  /// without one) — the thread stops beating its watchdog heartbeat and
  /// stops draining submissions, simulating a stuck fsync.
  void FreezeCommitterForTesting(bool frozen);

 private:
  BmehStore(std::unique_ptr<PageStore> store, std::unique_ptr<BmehTree> tree,
            PageId image_head, uint64_t generation,
            const StoreOptions& options);

  /// Loads superblock + tree + WAL from an already-open device.  Factored
  /// so the path and PageStore overloads share one recovery path.
  static Result<std::unique_ptr<BmehStore>> OpenExisting(
      std::unique_ptr<PageStore> store, const StoreOptions& options);
  static Result<std::unique_ptr<BmehStore>> InitFresh(
      std::unique_ptr<PageStore> store, const StoreOptions& options);

  Status ReadSuperblock(PageId* head, uint64_t* generation, PageId* wal_head,
                        uint64_t* wal_base_lsn);
  Status WriteSuperblock(PageId head, uint64_t generation, PageId wal_head,
                         uint64_t wal_base_lsn);
  /// Seals the WAL records a checkpoint is about to truncate into an
  /// archive segment file (no-op when archiving is off or the log is
  /// empty).  Failure fails the checkpoint before anything is truncated.
  Status ArchiveWalLocked();
  /// Wires StoreOptions::metrics / tracer through every layer (no-op when
  /// both are null).  Called from the constructor so WAL replay during
  /// Open() is already counted.
  void AttachObservability(const StoreOptions& options);
  /// Flips the tree into concurrent-read mode at the end of Open (no-op
  /// when disabled by options or the store opened degraded).
  void EnableOptimisticReads(const StoreOptions& options);
  /// One lock-free Get/Range attempt loop; returns true when the result
  /// is final (no fallback needed).  `res`/`st` receive the outcome.
  bool TryGetOptimistic(const PseudoKey& key, Result<uint64_t>* res);
  bool TryRangeOptimistic(const RangePredicate& pred,
                          std::vector<Record>* out, Status* st);
  /// Appends to the WAL and makes the record reachable + durable per the
  /// sync policy.  On failure the store is poisoned.
  Status LogMutation(const Wal::LogRecord& rec);
  /// Publishes / syncs whatever the WAL just appended (superblock flip
  /// for a fresh log head, MaybeSync otherwise).  Poisons on failure.
  Status PublishAppended();
  /// The batch engine behind Write(), InsertBatch/DeleteBatch and the
  /// group-commit thread.  Caller holds op_mutex_ exclusively.
  Status ApplyBatchLocked(std::span<const Wal::LogRecord> recs,
                          std::vector<Status>* per_record);
  /// Starts the group-commit thread when the options ask for it.
  void StartGroupCommit(const StoreOptions& options);
  Status CheckpointLocked();
  /// CheckpointLocked's body, run with the checkpoint heartbeat armed and
  /// the telemetry scope open.
  Status CheckpointArmedLocked();
  Status MaybeAutoCheckpointLocked();
  /// RAII exclusive hold of op_mutex_ that keeps writers_pending_ raised
  /// until release (see the member comment).  Only ever constructed as a
  /// prvalue from LockExclusive(), hence no move support.
  class ExclusiveOpLock {
   public:
    explicit ExclusiveOpLock(const BmehStore* s) : s_(s) {
      s_->writers_pending_.fetch_add(1, std::memory_order_acquire);
      lock_ = std::unique_lock<std::shared_mutex>(s_->op_mutex_);
    }
    ~ExclusiveOpLock() {
      lock_.unlock();
      s_->writers_pending_.fetch_sub(1, std::memory_order_release);
    }
    ExclusiveOpLock(ExclusiveOpLock&&) = delete;

   private:
    const BmehStore* s_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  /// Write-preferring acquisition of op_mutex_ (see the member comment).
  ExclusiveOpLock LockExclusive() const { return ExclusiveOpLock(this); }
  std::shared_lock<std::shared_mutex> LockShared() const;

  /// Operation lock.  Without group commit the store stays
  /// owner-synchronized and the lock is merely uncontended overhead; with
  /// the commit thread running it is what makes Get/Range, explicit
  /// batch writes, checkpoints and metrics sampling safe against the
  /// thread: mutators hold it exclusively, readers and the sampled
  /// sources take it shared.
  ///
  /// Acquire through LockExclusive() / LockShared(): glibc's rwlock
  /// prefers readers, so a stream of Get threads can starve a mutator
  /// indefinitely (observed: single-digit writes/sec under 16 spinning
  /// readers).  Mutators raise `writers_pending_` for their whole
  /// exclusive tenure — acquisition wait *and* hold — and locked readers
  /// back off on short timed sleeps while it is up.  Two effects: the
  /// writer's wait is bounded by in-flight readers rather than by reader
  /// arrival rate, and readers never pile up parked on the rwlock itself,
  /// so releasing it is not a 16-thread futex wake that hands the core to
  /// a crowd of sleeper-boosted readers before the writer can continue (a
  /// real mode: it capped a streaming writer at ~13 commits/s on one
  /// core).  Optimistic readers never touch the lock at all.
  mutable std::shared_mutex op_mutex_;
  mutable std::atomic<int> writers_pending_{0};
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<BmehTree> tree_;
  std::unique_ptr<Wal> wal_;
  /// Non-null only in group-commit mode; stopped before teardown.
  std::unique_ptr<GroupCommitter> committer_;
  PageId super_page_ = kInvalidPageId;
  PageId image_head_ = kInvalidPageId;
  /// WAL head the on-disk superblock currently points at.
  PageId published_wal_head_ = kInvalidPageId;
  uint64_t generation_ = 0;
  uint64_t checkpoint_every_ = 0;
  uint64_t dirty_ops_ = 0;
  /// WAL archiving directory ("" = archiving off).
  std::string wal_archive_dir_;
  /// Outstanding BeginBackup() pins.  While nonzero, checkpoints defer
  /// the frees below so pinned snapshot pages cannot be recycled under a
  /// concurrent page copy.
  uint64_t backup_pins_ = 0;
  std::vector<PageId> deferred_image_frees_;
  std::vector<PageId> deferred_page_frees_;
  RecoveryReport report_;
  bool crash_before_publish_ = false;
  /// Non-OK once a durability write failed; mutations are refused so the
  /// divergence between memory and disk cannot widen silently.
  Status poisoned_;
  /// Observability: cached metric handles (null when no registry was
  /// attached, making every charge site a single branch) plus the sampled
  /// source registered for tree / WAL / logical-I/O state.  The sampled
  /// state is owner-synchronized: snapshotting concurrently with
  /// mutations requires external locking (ConcurrentIndex-style), same as
  /// every other BmehStore call.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::OpLog* oplog_ = nullptr;
  obs::Watchdog* watchdog_ = nullptr;
  /// Checkpoint-path heartbeat: armed only while CheckpointLocked runs.
  obs::Watchdog::Heartbeat* checkpoint_hb_ = nullptr;
  int shard_index_ = -1;
  uint64_t watchdog_deadline_ms_ = 5000;
  std::atomic<uint64_t> inject_op_delay_ns_{0};
  uint64_t metrics_source_ = 0;
  obs::Counter* writes_total_ = nullptr;
  obs::Counter* puts_total_ = nullptr;
  obs::Counter* gets_total_ = nullptr;
  obs::Counter* deletes_total_ = nullptr;
  obs::Counter* ranges_total_ = nullptr;
  obs::Counter* checkpoints_total_ = nullptr;
  obs::Counter* wal_appends_total_ = nullptr;
  obs::Counter* wal_replayed_total_ = nullptr;
  obs::Counter* batch_writes_total_ = nullptr;
  obs::Histogram* batch_records_ = nullptr;
  obs::Histogram* insert_latency_ = nullptr;
  obs::Histogram* search_latency_ = nullptr;
  obs::Histogram* delete_latency_ = nullptr;
  obs::Histogram* range_latency_ = nullptr;
  obs::Histogram* checkpoint_latency_ = nullptr;
  obs::Histogram* wal_append_latency_ = nullptr;

  /// Optimistic read plane (see StoreOptions::optimistic_reads).  Set
  /// once at the end of Open, before the store escapes to any thread.
  bool olc_enabled_ = false;
  epoch::EpochManager* epoch_mgr_ = nullptr;
  std::atomic<uint64_t> backoff_seed_{0x853c49e6748fea9bull};
  obs::Counter* read_retries_total_ = nullptr;
  obs::Counter* read_fallbacks_total_ = nullptr;
  obs::Histogram* search_retried_latency_ = nullptr;
  obs::Histogram* range_retried_latency_ = nullptr;
};

namespace internal {

/// \brief Reads and CRC-verifies a BmehStore superblock page — shared
/// with the offline tooling (scrub/fsck) so the layout stays in one
/// place.  Statuses: OK, Corruption (not a superblock), or whatever the
/// page read returned (e.g. DataLoss on a corrupt v2 page).  Both the
/// v2 ("BMS2") and the LSN-aware v3 ("BMS3") layouts are accepted;
/// `wal_base_lsn` (optional) reports 1 for a v2 superblock.
Status ReadStoreSuperblock(PageStore* store, PageId page, PageId* image_head,
                           uint64_t* generation, PageId* wal_head,
                           uint64_t* wal_base_lsn = nullptr);

/// \brief Writes a v3 superblock — used by RestoreStore to stitch a
/// rebuilt store file together before its first open.
Status WriteStoreSuperblock(PageStore* store, PageId page, PageId image_head,
                            uint64_t generation, PageId wal_head,
                            uint64_t wal_base_lsn);

}  // namespace internal

}  // namespace bmeh

#endif  // BMEH_STORE_BMEH_STORE_H_
