// BmehStore: an embedded, durable record store built on the BMEH-tree and
// the POSIX page-store substrate — what a downstream user adopts when they
// want the paper's structure as a small database file rather than an
// in-memory index.
//
// Durability model: checkpointing.  The whole tree is serialized into a
// fresh page chain; a single superblock page (a fixed page id right after
// the store header) is then rewritten to point at the new chain, and the
// old chain's pages are returned to the free list.  The superblock write
// is one page-sized pwrite, so a crash leaves the store at either the old
// or the new checkpoint, never in between; pages written for an
// unpublished checkpoint are reclaimed on the next successful one.
// Mutations between checkpoints live in memory only (the tree itself) —
// `checkpoint_every` bounds how many can be lost.

#ifndef BMEH_STORE_BMEH_STORE_H_
#define BMEH_STORE_BMEH_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/bmeh_tree.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Configuration for opening / creating a store file.
struct StoreOptions {
  /// Key shape; must match the file's when opening an existing store.
  KeySchema schema{2, 31};
  /// Tree parameters, used only when creating a fresh store.
  TreeOptions tree = TreeOptions::Make(2, 16);
  /// Page size of a newly created file.
  int page_size = kDefaultPageSize;
  /// Checkpoint automatically after this many mutations (0 = manual).
  uint64_t checkpoint_every = 0;
};

/// \brief A durable multidimensional record store.
class BmehStore {
 public:
  ~BmehStore();
  BmehStore(const BmehStore&) = delete;
  BmehStore& operator=(const BmehStore&) = delete;

  /// \brief Opens `path`, creating a fresh store when the file does not
  /// exist.  When opening an existing file the persisted schema must
  /// equal options.schema.
  static Result<std::unique_ptr<BmehStore>> Open(const std::string& path,
                                                 const StoreOptions& options);

  /// \brief Inserts a record (AlreadyExists on duplicates).
  Status Put(const PseudoKey& key, uint64_t payload);

  /// \brief Exact-match lookup.
  Result<uint64_t> Get(const PseudoKey& key);

  /// \brief Deletes a record (KeyError when absent).
  Status Delete(const PseudoKey& key);

  /// \brief Partial-range query.
  Status Range(const RangePredicate& pred, std::vector<Record>* out);

  /// \brief Writes a durable checkpoint (atomic superblock flip) and
  /// fsyncs the file.
  Status Checkpoint();

  /// \brief Mutations since the last successful checkpoint.
  uint64_t dirty_ops() const { return dirty_ops_; }

  /// \brief Monotone checkpoint generation (0 for a fresh store).
  uint64_t generation() const { return generation_; }

  /// \brief The underlying in-memory tree (read-mostly introspection).
  const BmehTree& tree() const { return *tree_; }
  BmehTree* mutable_tree() { return tree_.get(); }

  const KeySchema& schema() const { return tree_->schema(); }

  /// \brief Testing hook: skip publishing the next checkpoint's
  /// superblock, simulating a crash after the image write.
  void SimulateCrashBeforePublishForTesting() {
    crash_before_publish_ = true;
  }

 private:
  BmehStore(std::unique_ptr<FilePageStore> store,
            std::unique_ptr<BmehTree> tree, PageId image_head,
            uint64_t generation, uint64_t checkpoint_every);

  Status ReadSuperblock(PageId* head, uint64_t* generation);
  Status WriteSuperblock(PageId head, uint64_t generation);
  Status MaybeAutoCheckpoint();

  std::unique_ptr<FilePageStore> store_;
  std::unique_ptr<BmehTree> tree_;
  PageId image_head_ = kInvalidPageId;
  uint64_t generation_ = 0;
  uint64_t checkpoint_every_ = 0;
  uint64_t dirty_ops_ = 0;
  bool crash_before_publish_ = false;
};

}  // namespace bmeh

#endif  // BMEH_STORE_BMEH_STORE_H_
