#include "src/store/group_committer.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/obs/stopwatch.h"

namespace bmeh {

GroupCommitter::GroupCommitter(const Options& options, CommitFn fn)
    : options_(options), fn_(std::move(fn)) {
  BMEH_CHECK(fn_ != nullptr);
  BMEH_CHECK(options_.queue_depth > 0);
  BMEH_CHECK(options_.max_batch > 0);
  thread_ = std::thread([this] { Run(); });
}

GroupCommitter::~GroupCommitter() { Stop(); }

void GroupCommitter::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  group_commits_total_ = registry->GetCounter("wal_group_commits_total");
  refused_total_ = registry->GetCounter("group_commit_refused_total");
  wait_ns_ = registry->GetHistogram("group_commit_wait_ns");
}

void GroupCommitter::AttachWatchdog(obs::Watchdog* watchdog,
                                    const std::string& name,
                                    uint64_t deadline_ms) {
  if (watchdog == nullptr) return;
  BMEH_CHECK(watchdog_ == nullptr);
  watchdog_ = watchdog;
  obs::Watchdog::Heartbeat* hb = watchdog->Register(name, deadline_ms);
  hb->Arm();
  // Beat a few times per deadline while idle; the interval is read
  // relaxed after the acquire load of heartbeat_ publishes it.
  beat_interval_ms_.store(std::max<uint64_t>(1, deadline_ms / 4),
                          std::memory_order_relaxed);
  heartbeat_.store(hb, std::memory_order_release);
  // Kick the loop out of any indefinite wait so it switches to bounded,
  // beating waits.
  std::lock_guard<std::mutex> lock(mutex_);
  work_cv_.notify_all();
}

void GroupCommitter::FreezeForTesting(bool frozen) {
  frozen_.store(frozen, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  work_cv_.notify_all();
}

Status GroupCommitter::Submit(const Wal::LogRecord& rec) {
  const uint64_t start =
      wait_ns_ != nullptr ? obs::MonotonicNanos() : 0;
  Pending pending;
  pending.rec = &rec;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= options_.queue_depth) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      if (refused_total_ != nullptr) refused_total_->Inc();
      return Status::ResourceExhausted(
          stopping_ ? "group committer is stopping"
                    : "group-commit queue full (" +
                          std::to_string(options_.queue_depth) +
                          " pending records); retry");
    }
    queue_.push_back(&pending);
    work_cv_.notify_one();
    done_cv_.wait(lock, [&pending] { return pending.done; });
  }
  if (wait_ns_ != nullptr) wait_ns_->Record(obs::MonotonicNanos() - start);
  return pending.result;
}

void GroupCommitter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  // The thread is gone; nothing beats the heartbeat anymore, so take it
  // out of the watchdog's scan before it reads as a stall.
  obs::Watchdog::Heartbeat* hb =
      heartbeat_.exchange(nullptr, std::memory_order_acq_rel);
  if (hb != nullptr) watchdog_->Unregister(hb);
}

void GroupCommitter::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // A freeze simulates a hung fsync: no draining, no beating.  Stop()
    // overrides it so teardown (which must drain the queue) never hangs.
    if (frozen_.load(std::memory_order_acquire) && !stopping_) {
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      lock.lock();
      continue;
    }
    obs::Watchdog::Heartbeat* hb = heartbeat_.load(std::memory_order_acquire);
    if (hb != nullptr) hb->Beat();
    // `ready` also fires when a heartbeat is (re)published so an idle
    // indefinite wait upgrades to the bounded, beating wait below.
    const auto ready = [this, hb] {
      return stopping_ || !queue_.empty() ||
             frozen_.load(std::memory_order_acquire) ||
             heartbeat_.load(std::memory_order_acquire) != hb;
    };
    if (hb == nullptr) {
      work_cv_.wait(lock, ready);
    } else {
      // Bounded wait so the heartbeat keeps beating while idle.
      work_cv_.wait_for(
          lock,
          std::chrono::milliseconds(
              beat_interval_ms_.load(std::memory_order_relaxed)),
          ready);
    }
    if (frozen_.load(std::memory_order_acquire) && !stopping_) continue;
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    if (options_.window_us > 0 && queue_.size() < options_.max_batch &&
        !stopping_) {
      // Linger: closely-spaced writers arriving within the window ride
      // this batch instead of paying their own fsync.
      work_cv_.wait_for(lock, std::chrono::microseconds(options_.window_us),
                        [this] {
                          return stopping_ ||
                                 queue_.size() >= options_.max_batch;
                        });
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<Pending*> batch(queue_.begin(),
                                queue_.begin() + static_cast<long>(take));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    lock.unlock();

    std::vector<Wal::LogRecord> recs;
    recs.reserve(batch.size());
    for (const Pending* p : batch) recs.push_back(*p->rec);
    std::vector<Status> results(batch.size());
    fn_(recs, &results);

    batches_.fetch_add(1, std::memory_order_relaxed);
    records_.fetch_add(batch.size(), std::memory_order_relaxed);
    // wal_batch_records is charged by the store's batch applier (which
    // sees explicit WriteBatches too), not here — one record per batch.
    if (group_commits_total_ != nullptr) group_commits_total_->Inc();

    lock.lock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->result =
          i < results.size() ? results[i] : Status::IoError("no result");
      batch[i]->done = true;
    }
    done_cv_.notify_all();
  }
}

}  // namespace bmeh
