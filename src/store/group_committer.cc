#include "src/store/group_committer.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/obs/stopwatch.h"

namespace bmeh {

GroupCommitter::GroupCommitter(const Options& options, CommitFn fn)
    : options_(options), fn_(std::move(fn)) {
  BMEH_CHECK(fn_ != nullptr);
  BMEH_CHECK(options_.queue_depth > 0);
  BMEH_CHECK(options_.max_batch > 0);
  thread_ = std::thread([this] { Run(); });
}

GroupCommitter::~GroupCommitter() { Stop(); }

void GroupCommitter::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  group_commits_total_ = registry->GetCounter("wal_group_commits_total");
  refused_total_ = registry->GetCounter("group_commit_refused_total");
  wait_ns_ = registry->GetHistogram("group_commit_wait_ns");
}

Status GroupCommitter::Submit(const Wal::LogRecord& rec) {
  const uint64_t start =
      wait_ns_ != nullptr ? obs::MonotonicNanos() : 0;
  Pending pending;
  pending.rec = &rec;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= options_.queue_depth) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      if (refused_total_ != nullptr) refused_total_->Inc();
      return Status::ResourceExhausted(
          stopping_ ? "group committer is stopping"
                    : "group-commit queue full (" +
                          std::to_string(options_.queue_depth) +
                          " pending records); retry");
    }
    queue_.push_back(&pending);
    work_cv_.notify_one();
    done_cv_.wait(lock, [&pending] { return pending.done; });
  }
  if (wait_ns_ != nullptr) wait_ns_->Record(obs::MonotonicNanos() - start);
  return pending.result;
}

void GroupCommitter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void GroupCommitter::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    if (options_.window_us > 0 && queue_.size() < options_.max_batch &&
        !stopping_) {
      // Linger: closely-spaced writers arriving within the window ride
      // this batch instead of paying their own fsync.
      work_cv_.wait_for(lock, std::chrono::microseconds(options_.window_us),
                        [this] {
                          return stopping_ ||
                                 queue_.size() >= options_.max_batch;
                        });
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<Pending*> batch(queue_.begin(),
                                queue_.begin() + static_cast<long>(take));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    lock.unlock();

    std::vector<Wal::LogRecord> recs;
    recs.reserve(batch.size());
    for (const Pending* p : batch) recs.push_back(*p->rec);
    std::vector<Status> results(batch.size());
    fn_(recs, &results);

    batches_.fetch_add(1, std::memory_order_relaxed);
    records_.fetch_add(batch.size(), std::memory_order_relaxed);
    // wal_batch_records is charged by the store's batch applier (which
    // sees explicit WriteBatches too), not here — one record per batch.
    if (group_commits_total_ != nullptr) group_commits_total_->Inc();

    lock.lock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->result =
          i < results.size() ? results[i] : Status::IoError("no result");
      batch[i]->done = true;
    }
    done_cv_.notify_all();
  }
}

}  // namespace bmeh
