// Scrub and salvage: the offline halves of the corruption defense.
//
// ScrubStore walks a store file and verifies every page's self-checksum
// trailer plus the structural reachability of the superblock, checkpoint
// image and WAL chains — detection without mutation, the job a background
// scrubber runs on a schedule so bit rot is found while the redundancy to
// fix it (backups, the WAL) still exists.
//
// SalvageStore extracts every record still reachable in a (possibly
// corrupt) store and writes it into a fresh store file: tolerant open
// first (checkpoint prefix + WAL replay), then — when the superblock or
// directory is beyond use — a brute-force sweep that tries every page as
// a potential image head.  Also the upgrade path from legacy v1 files to
// the self-checksumming v2 format.

#ifndef BMEH_STORE_SCRUB_H_
#define BMEH_STORE_SCRUB_H_

#include <string>
#include <vector>

#include "src/store/bmeh_store.h"

namespace bmeh {

/// \brief What a read-only integrity scrub of a store file found.
struct ScrubReport {
  /// Pages whose trailer failed verification (empty = no bit rot).
  std::vector<PageId> corrupt_pages;
  /// Total pages in the file, including header and superblock.
  uint64_t pages_scanned = 0;
  /// Pages reachable from the superblock (superblock + image + WAL).
  uint64_t pages_reachable = 0;
  /// The file header / superblock / a chain was too damaged to walk.
  bool structure_damaged = false;
  /// Human-readable notes, one per problem found.
  std::vector<std::string> notes;
  /// On-disk format version (1 = legacy, nothing to verify per page).
  int format_version = 0;

  bool clean() const {
    return corrupt_pages.empty() && !structure_damaged;
  }
};

/// \brief Verifies every page checksum and chain of the store at `path`
/// without modifying the file.  A non-OK status means the scrub itself
/// could not run (e.g. the file is missing); corruption findings are
/// reported in `report` with an OK status.
///
/// With a registry attached the run charges `scrub_runs_total`,
/// `scrub_pages_scanned_total`, `scrub_corrupt_pages_total`,
/// `scrub_structure_damaged_total` and the `scrub_latency_ns` histogram —
/// what a background scrubber exports so bit rot shows up on a dashboard
/// before it shows up in a query.
Status ScrubStore(const std::string& path, ScrubReport* report,
                  obs::MetricsRegistry* metrics = nullptr);

/// \brief What SalvageStore managed to recover.
struct SalvageReport {
  uint64_t records_recovered = 0;
  /// Salvage had to fall back to the brute-force image sweep.
  bool used_sweep = false;
  /// The source opened degraded (some records may be missing).
  bool source_degraded = false;
};

/// \brief Copies every reachable record of the store at `src` into a
/// fresh store file at `dst` (truncating any existing file), checkpointed
/// and clean.  `options` supplies the schema and tree parameters for the
/// destination (and the expected schema of the source).  Fails when not
/// even a brute-force sweep finds a usable record set.
///
/// With a registry attached the run charges `salvage_runs_total`,
/// `salvage_records_recovered_total`, `salvage_sweeps_total` and the
/// `scrub_latency_ns` histogram (salvage is the mutating half of the same
/// offline defense).
Status SalvageStore(const std::string& src, const std::string& dst,
                    const StoreOptions& options, SalvageReport* report,
                    obs::MetricsRegistry* metrics = nullptr);

}  // namespace bmeh

#endif  // BMEH_STORE_SCRUB_H_
