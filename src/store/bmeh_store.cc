#include "src/store/bmeh_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <thread>
#include <unordered_set>

#include "src/common/backoff.h"
#include "src/common/crc32.h"
#include "src/obs/stopwatch.h"
#include "src/store/group_committer.h"

namespace bmeh {

namespace {

// Superblock layout (version 3, LSN-aware):
//   [0]  magic "BMS3"
//   [4]  image chain head (kInvalidPageId = no checkpoint yet)
//   [8]  checkpoint generation (u64)
//   [16] WAL chain head (kInvalidPageId = empty log)
//   [20] WAL base LSN (u64) — LSN of the first record in the log
//   [28] CRC32 of bytes [0, 28)
// The version-2 layout ("BMS2", no base LSN, CRC over [0, 20)) is still
// accepted on read — a v2 store simply reports base LSN 1, losing the
// pre-upgrade mutation count but never identity ordering — and upgraded
// to v3 on the first superblock write.
constexpr uint32_t kSuperMagicV2 = 0x424d5332;  // "BMS2"
constexpr uint32_t kSuperMagic = 0x424d5333;    // "BMS3"
constexpr size_t kSuperPayloadV2 = 20;
constexpr size_t kSuperPayload = 28;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadSuperblockFrom(PageStore* store, PageId page, PageId* head,
                          uint64_t* generation, PageId* wal_head,
                          uint64_t* wal_base_lsn) {
  std::vector<uint8_t> buf(store->page_size());
  BMEH_RETURN_NOT_OK(store->Read(page, buf));
  uint32_t magic;
  std::memcpy(&magic, buf.data(), 4);
  if (magic != kSuperMagic && magic != kSuperMagicV2) {
    return Status::Corruption("bad superblock magic");
  }
  const size_t payload =
      magic == kSuperMagic ? kSuperPayload : kSuperPayloadV2;
  uint32_t crc;
  std::memcpy(&crc, buf.data() + payload, 4);
  if (crc != Crc32(buf.data(), payload)) {
    return Status::Corruption("superblock checksum mismatch");
  }
  std::memcpy(head, buf.data() + 4, 4);
  std::memcpy(generation, buf.data() + 8, 8);
  std::memcpy(wal_head, buf.data() + 16, 4);
  uint64_t base = 1;
  if (magic == kSuperMagic) std::memcpy(&base, buf.data() + 20, 8);
  if (wal_base_lsn != nullptr) *wal_base_lsn = base;
  return Status::OK();
}

Status WriteSuperblockTo(PageStore* store, PageId page, PageId head,
                         uint64_t generation, PageId wal_head,
                         uint64_t wal_base_lsn) {
  std::vector<uint8_t> buf(store->page_size(), 0);
  std::memcpy(buf.data(), &kSuperMagic, 4);
  std::memcpy(buf.data() + 4, &head, 4);
  std::memcpy(buf.data() + 8, &generation, 8);
  std::memcpy(buf.data() + 16, &wal_head, 4);
  std::memcpy(buf.data() + 20, &wal_base_lsn, 8);
  const uint32_t crc = Crc32(buf.data(), kSuperPayload);
  std::memcpy(buf.data() + kSuperPayload, &crc, 4);
  BMEH_RETURN_NOT_OK(store->Write(page, buf));
  return store->Sync();
}

/// Deterministic logical outcomes of applying a mutation to the tree:
/// duplicate insert, delete of an absent key, a key outside the schema
/// domain, a structural capacity limit, or a landing on a quarantined
/// bucket of a degraded tree.  These were (or would have been) rejections
/// when the record was logged live and reject identically at replay, so
/// both the live batch path and recovery treat them as per-record no-ops
/// — anything else is a real IO/corruption failure.
bool IsToleratedApplyOutcome(const Status& st) {
  return st.IsAlreadyExists() || st.IsKeyError() || st.IsInvalid() ||
         st.IsCapacityError() || st.IsDataLoss();
}

/// Applies one replayed WAL record to the tree (see above for why logical
/// failures are swallowed; only real failures abort recovery).
Status ApplyReplayed(BmehTree* tree, const Wal::LogRecord& rec) {
  Status st = (rec.op == Wal::kOpInsert) ? tree->Insert(rec.key, rec.payload)
                                         : tree->Delete(rec.key);
  if (st.ok() || IsToleratedApplyOutcome(st)) return Status::OK();
  return st;
}

/// One public operation's telemetry, measured once: the same duration (and
/// the same freshly-minted trace_id) lands in the latency histogram, the
/// tracer span and the wide event, so all three views of one slow Put are
/// correlatable.  Destructor order inside an op body does the bookkeeping
/// after the op's last exit path has set the status.
class OpScope {
 public:
  OpScope(const char* op, obs::Histogram* hist, obs::Tracer* tracer,
          obs::OpLog* oplog, int shard,
          const std::atomic<uint64_t>* inject_delay_ns)
      : hist_(hist),
        oplog_(oplog),
        inject_delay_ns_(inject_delay_ns),
        start_ns_(obs::MonotonicNanos()),
        span_(tracer, op, "store") {
    ev_.op = op;
    ev_.shard = shard;
    if (oplog_ != nullptr || tracer != nullptr) {
      ev_.trace_id = obs::NextTraceId();
      span_.set_trace_id(ev_.trace_id);
    }
  }

  ~OpScope() {
    const uint64_t delay =
        inject_delay_ns_->load(std::memory_order_relaxed);
    if (delay > 0) {
      // Testing hook: spin out the op so the oplog's slow-op override has
      // something deterministic to flag.
      const uint64_t until = obs::MonotonicNanos() + delay;
      while (obs::MonotonicNanos() < until) {
      }
    }
    const uint64_t dur = obs::MonotonicNanos() - start_ns_;
    if (hist_ != nullptr) hist_->Record(dur);
    if (oplog_ != nullptr) {
      ev_.latency_ns = dur;
      oplog_->Record(ev_);
    }
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  void set_status(const Status& st) { ev_.status = StatusCodeName(st.code()); }
  void set_lsn(uint64_t lsn) { ev_.lsn = lsn; }
  void set_count(uint64_t n) { ev_.count = n; }

 private:
  obs::Histogram* hist_;
  obs::OpLog* oplog_;
  const std::atomic<uint64_t>* inject_delay_ns_;
  const uint64_t start_ns_;
  obs::TraceSpan span_;
  obs::WideEvent ev_;
};

}  // namespace

BmehStore::BmehStore(std::unique_ptr<PageStore> store,
                     std::unique_ptr<BmehTree> tree, PageId image_head,
                     uint64_t generation, const StoreOptions& options)
    : store_(std::move(store)),
      tree_(std::move(tree)),
      wal_(std::make_unique<Wal>(store_.get(), options.wal_sync_every)),
      super_page_(store_->first_data_page()),
      image_head_(image_head),
      generation_(generation),
      checkpoint_every_(options.checkpoint_every),
      wal_archive_dir_(options.wal_archive_dir) {
  AttachObservability(options);
  StartGroupCommit(options);
}

void BmehStore::StartGroupCommit(const StoreOptions& options) {
  if (options.group_commit_window_us == 0) return;
  GroupCommitter::Options gc;
  gc.window_us = options.group_commit_window_us;
  gc.queue_depth = options.group_commit_queue_depth;
  gc.max_batch = options.group_commit_max_batch;
  committer_ = std::make_unique<GroupCommitter>(
      gc, [this](std::span<const Wal::LogRecord> recs,
                 std::vector<Status>* results) {
        auto lock = LockExclusive();
        ApplyBatchLocked(recs, results);
      });
  if (metrics_ != nullptr) committer_->AttachMetrics(metrics_);
  if (watchdog_ != nullptr) {
    committer_->AttachWatchdog(watchdog_,
                               options.metrics_label + "group_commit",
                               watchdog_deadline_ms_);
  }
}

void BmehStore::FreezeCommitterForTesting(bool frozen) {
  if (committer_ != nullptr) committer_->FreezeForTesting(frozen);
}

void BmehStore::AttachObservability(const StoreOptions& options) {
  tracer_ = options.tracer;
  oplog_ = options.oplog;
  watchdog_ = options.watchdog;
  shard_index_ = options.shard_index;
  watchdog_deadline_ms_ = options.watchdog_deadline_ms;
  if (watchdog_ != nullptr) {
    // Armed only around CheckpointLocked (a checkpoint is legally absent
    // most of the time); the label keeps sibling shards distinguishable.
    checkpoint_hb_ = watchdog_->Register(options.metrics_label + "checkpoint",
                                         watchdog_deadline_ms_);
  }
  if (options.metrics == nullptr) return;
  metrics_ = options.metrics;
  writes_total_ = metrics_->GetCounter("store_writes_total");
  puts_total_ = metrics_->GetCounter("store_puts_total");
  gets_total_ = metrics_->GetCounter("store_gets_total");
  deletes_total_ = metrics_->GetCounter("store_deletes_total");
  ranges_total_ = metrics_->GetCounter("store_ranges_total");
  checkpoints_total_ = metrics_->GetCounter("store_checkpoints_total");
  wal_appends_total_ = metrics_->GetCounter("wal_appends_total");
  wal_replayed_total_ = metrics_->GetCounter("wal_replayed_records_total");
  batch_writes_total_ = metrics_->GetCounter("store_batch_writes_total");
  batch_records_ = metrics_->GetHistogram("wal_batch_records");
  read_retries_total_ = metrics_->GetCounter("store_read_retries_total");
  read_fallbacks_total_ = metrics_->GetCounter("store_read_fallbacks_total");
  insert_latency_ = metrics_->GetHistogram("insert_latency_ns");
  search_latency_ = metrics_->GetHistogram("search_latency_ns");
  delete_latency_ = metrics_->GetHistogram("delete_latency_ns");
  range_latency_ = metrics_->GetHistogram("range_latency_ns");
  // Read-path latency split by retry count: ops that needed at least one
  // optimistic retry land here *in addition to* the total histograms.
  search_retried_latency_ = metrics_->GetHistogram("search_retried_latency_ns");
  range_retried_latency_ = metrics_->GetHistogram("range_retried_latency_ns");
  checkpoint_latency_ = metrics_->GetHistogram("checkpoint_latency_ns");
  wal_append_latency_ = metrics_->GetHistogram("wal_append_latency_ns");
  store_->AttachMetrics(metrics_, &op_mutex_, options.metrics_label);
  if (tree_ != nullptr) {
    tree_->set_split_latency_histogram(
        metrics_->GetHistogram("split_latency_ns"));
  }
  // Tree / WAL / logical-I/O state, sampled at Snapshot() time.  The
  // constructor runs before any replay or mutation, so by the time a
  // snapshot can observe this source tree_ is set (OpenExisting assigns
  // it before anything escapes).  The shared lock makes sampling safe
  // against the group-commit thread (and costs nothing uncontended).
  // Every sampled name carries the store's label (empty for a standalone
  // store) so sibling shards sharing the registry don't overwrite each
  // other at Snapshot() time.
  const std::string label = options.metrics_label;
  metrics_source_ =
      metrics_->AddSource([this, label](obs::RegistrySnapshot* s) {
        std::shared_lock<std::shared_mutex> lock(op_mutex_);
        // With optimistic reads on, tree-shape gauges are sampled from
        // the published (immutable) structure under the epoch guard with
        // version validation — never through the writer-view walk, which
        // a concurrent mutation's copy-on-write scope would race.
        IndexStructureStats ts;
        bool sampled = false;
        if (olc_enabled_) {
          epoch::Guard guard(epoch_mgr_);
          for (int i = 0; guard.pinned() && i < kOlcReadAttempts && !sampled;
               ++i) {
            sampled = tree_->SampleStatsOptimistic(&ts);
          }
          const epoch::EpochStats es = epoch_mgr_->Stats();
          s->gauges[label + "epoch_deferred_frees"] =
              static_cast<int64_t>(es.deferred);
          s->counters[label + "epoch_retired_total"] = es.retired_total;
          s->counters[label + "epoch_reclaimed_total"] = es.reclaimed_total;
          s->counters[label + "epoch_advances_total"] = es.advances_total;
        }
        if (!sampled) ts = tree_->Stats();
        s->gauges[label + "tree_records"] = static_cast<int64_t>(ts.records);
        s->gauges[label + "tree_height"] = tree_->height();
        s->gauges[label + "tree_directory_nodes"] =
            static_cast<int64_t>(ts.directory_nodes);
        s->gauges[label + "tree_directory_entries"] =
            static_cast<int64_t>(ts.directory_entries);
        s->gauges[label + "tree_data_pages"] =
            static_cast<int64_t>(ts.data_pages);
        s->gauges[label + "store_generation"] =
            static_cast<int64_t>(generation_);
        s->gauges[label + "store_dirty_ops"] =
            static_cast<int64_t>(dirty_ops_);
        s->gauges[label + "wal_records"] =
            static_cast<int64_t>(wal_->record_count());
        s->gauges[label + "wal_pages"] =
            static_cast<int64_t>(wal_->pages().size());
        const BmehMutationStats& m = tree_->mutation_stats();
        s->counters[label + "tree_page_splits_total"] = m.page_splits;
        s->counters[label + "tree_node_doublings_total"] = m.node_doublings;
        s->counters[label + "tree_node_splits_total"] = m.node_splits;
        s->counters[label + "tree_forced_splits_total"] = m.forced_splits;
        s->counters[label + "tree_new_roots_total"] = m.new_roots;
        s->counters[label + "tree_page_merges_total"] = m.page_merges;
        s->counters[label + "tree_node_halvings_total"] = m.node_halvings;
        s->counters[label + "tree_node_merges_total"] = m.node_merges;
        s->counters[label + "tree_root_collapses_total"] = m.root_collapses;
        const IoStats io = tree_->io()->stats();
        s->counters[label + "logical_dir_reads_total"] = io.dir_reads;
        s->counters[label + "logical_dir_writes_total"] = io.dir_writes;
        s->counters[label + "logical_data_reads_total"] = io.data_reads;
        s->counters[label + "logical_data_writes_total"] = io.data_writes;
      });
}

BmehStore::SampledState BmehStore::SampleStateForMetrics() const {
  std::shared_lock<std::shared_mutex> lock(op_mutex_);
  SampledState st;
  st.records = tree_->Stats().records;
  st.height = tree_->height();
  st.wal_records = wal_->record_count();
  st.dirty_ops = dirty_ops_;
  st.generation = generation_;
  st.wal_base_lsn = wal_->base_lsn();
  st.durable_lsn = wal_->next_lsn() - 1;
  return st;
}

BmehStore::~BmehStore() {
  // Stop the commit thread first: after Stop() returns no thread but this
  // one touches the store, so the final checkpoint runs single-threaded.
  if (committer_ != nullptr) committer_->Stop();
  if (dirty_ops_ > 0 && poisoned_.ok() && !degraded()) {
    Status st = Checkpoint();
    if (!st.ok()) {
      BMEH_LOG(Error) << "final checkpoint failed: " << st;
    }
  }
  if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
  if (checkpoint_hb_ != nullptr) {
    // After the final checkpoint above, so the checkpoint path stays
    // monitored for the store's whole life.
    watchdog_->Unregister(checkpoint_hb_);
    checkpoint_hb_ = nullptr;
  }
  if (olc_enabled_) {
    // The tree (and everything it retired) dies with this store; drain
    // limbo now so the global manager does not hold dead stores' nodes.
    epoch_mgr_->Drain();
  }
}

Status BmehStore::ReadSuperblock(PageId* head, uint64_t* generation,
                                 PageId* wal_head, uint64_t* wal_base_lsn) {
  return ReadSuperblockFrom(store_.get(), super_page_, head, generation,
                            wal_head, wal_base_lsn);
}

Status BmehStore::WriteSuperblock(PageId head, uint64_t generation,
                                  PageId wal_head, uint64_t wal_base_lsn) {
  return WriteSuperblockTo(store_.get(), super_page_, head, generation,
                           wal_head, wal_base_lsn);
}

Result<std::unique_ptr<BmehStore>> BmehStore::InitFresh(
    std::unique_ptr<PageStore> store, const StoreOptions& options) {
  BMEH_ASSIGN_OR_RETURN(PageId super, store->Allocate());
  if (super != store->first_data_page()) {
    return Status::Corruption("unexpected superblock page id " +
                              std::to_string(super));
  }
  auto tree = std::make_unique<BmehTree>(options.schema, options.tree);
  auto out = std::unique_ptr<BmehStore>(
      new BmehStore(std::move(store), std::move(tree), kInvalidPageId, 0,
                    options));
  BMEH_RETURN_NOT_OK(out->WriteSuperblock(kInvalidPageId, /*generation=*/0,
                                          kInvalidPageId,
                                          /*wal_base_lsn=*/1));
  // Last step before the store escapes: no other thread can hold a
  // reference yet, so flipping the read path on is unobservable.
  out->EnableOptimisticReads(options);
  return out;
}

Result<std::unique_ptr<BmehStore>> BmehStore::OpenExisting(
    std::unique_ptr<PageStore> store, const StoreOptions& options) {
  auto out = std::unique_ptr<BmehStore>(
      new BmehStore(std::move(store), nullptr, kInvalidPageId, 0, options));
  PageId head = kInvalidPageId, wal_head = kInvalidPageId;
  uint64_t generation = 0, wal_base_lsn = 1;
  const Status super_st =
      out->ReadSuperblock(&head, &generation, &wal_head, &wal_base_lsn);
  if (!super_st.ok()) {
    // A verified-corrupt superblock (DataLoss) on a tolerant open still
    // yields a store object — with both chain heads gone there is nothing
    // to serve, but the caller can see the diagnosis and run salvage.
    // Anything else (e.g. bad magic on an intact page: not a BmehStore
    // file) stays a hard failure.
    if (!options.tolerate_corruption || !super_st.IsDataLoss()) {
      return super_st;
    }
    out->report_.degraded = true;
    out->report_.superblock_lost = true;
    out->report_.image_lost = true;
    out->tree_ = std::make_unique<BmehTree>(options.schema, options.tree);
    out->poisoned_ = Status::DataLoss(
        "superblock lost to corruption; store is read-only degraded");
    return out;
  }
  out->image_head_ = head;
  out->generation_ = generation;
  if (head == kInvalidPageId) {
    out->tree_ = std::make_unique<BmehTree>(options.schema, options.tree);
  } else if (!options.tolerate_corruption) {
    BMEH_ASSIGN_OR_RETURN(out->tree_,
                          BmehTree::LoadFrom(out->store_.get(), head));
  } else {
    TreeLoadReport image_report;
    auto loaded =
        BmehTree::LoadFromTolerant(out->store_.get(), head, &image_report);
    if (loaded.ok()) {
      out->tree_ = std::move(loaded).ValueOrDie();
      if (out->tree_->degraded()) {
        out->report_.degraded = true;
        out->report_.image_data_loss = image_report.data_loss;
        out->report_.quarantined_buckets = image_report.quarantined_pages;
        out->store_->NoteQuarantined(image_report.quarantined_pages);
      }
    } else if (image_report.directory_lost && !image_report.complete) {
      // The cut fell inside the directory itself: no bucket survives.
      // Keep the store openable for triage; WAL records still replay.
      out->report_.degraded = true;
      out->report_.image_lost = true;
      out->report_.image_data_loss = image_report.data_loss;
      out->tree_ = std::make_unique<BmehTree>(options.schema, options.tree);
    } else {
      // Intact chain but unparseable image: structural corruption, not
      // bit rot — nothing a degraded mode could honestly serve.
      return loaded.status();
    }
  }
  if (head != kInvalidPageId && !out->report_.image_lost &&
      !(out->tree_->schema() == options.schema)) {
    return Status::Invalid("schema mismatch: store has " +
                           out->tree_->schema().ToString() +
                           ", caller expects " + options.schema.ToString());
  }
  // Replay the log on top of the checkpoint.  A torn tail is discarded
  // (and zeroed) by the Wal; whatever replays is re-counted as dirty so
  // a clean shutdown folds it into the next checkpoint.
  BmehTree* tree = out->tree_.get();
  if (out->metrics_ != nullptr) {
    // The tree was built after the constructor attached observability;
    // wire it now so replay-induced splits are already charged.
    tree->set_split_latency_histogram(
        out->metrics_->GetHistogram("split_latency_ns"));
  }
  obs::Counter* replayed = out->wal_replayed_total_;
  out->wal_->SetBaseLsn(wal_base_lsn);
  BMEH_RETURN_NOT_OK(out->wal_->Replay(
      wal_head, [tree, replayed](const Wal::LogRecord& rec) {
        if (replayed != nullptr) replayed->Inc();
        return ApplyReplayed(tree, rec);
      }));
  out->dirty_ops_ = out->wal_->record_count();
  out->published_wal_head_ = wal_head;
  if (out->wal_->replay_hit_data_loss()) {
    // Not a benign torn tail: a verified-corrupt page swallowed a suffix
    // of acknowledged mutations.
    if (!options.tolerate_corruption) {
      return Status::DataLoss("WAL cut short by a corrupt page");
    }
    out->report_.degraded = true;
    out->report_.wal_data_loss = true;
    if (out->poisoned_.ok()) {
      // New appends would overwrite the surviving tail page and cut the
      // chain ahead of the corrupt page — after which nothing on disk
      // records that acknowledged mutations were lost.
      out->poisoned_ = Status::DataLoss(
          "WAL cut short by a corrupt page; store is read-only degraded");
    }
  }
  if (out->wal_->head() != wal_head && !out->report_.degraded) {
    // The whole log was unreadable garbage (e.g. the head page never hit
    // the disk).  Point the superblock away from it so the pages can be
    // safely reused.  (Skipped on a degraded store: the corrupt chain is
    // evidence fsck still wants to walk.)
    BMEH_RETURN_NOT_OK(out->WriteSuperblock(out->image_head_,
                                            out->generation_,
                                            out->wal_->head(),
                                            out->wal_->base_lsn()));
    out->published_wal_head_ = out->wal_->head();
    out->wal_->NoteSynced();
  }
  if (out->report_.image_lost && out->poisoned_.ok()) {
    // Records that replayed from the WAL are genuine, but everything the
    // lost checkpoint held is gone; new mutations would only deepen the
    // split between the two histories.
    out->poisoned_ = Status::DataLoss(
        "checkpoint image lost to corruption; store is read-only degraded");
  }
  // Replay is done and the store has not escaped to any other thread yet,
  // so this is the quiescent point where concurrent reads may turn on.
  out->EnableOptimisticReads(options);
  return out;
}

void BmehStore::EnableOptimisticReads(const StoreOptions& options) {
  if (!options.optimistic_reads) return;
  if (tree_ == nullptr || tree_->degraded() || report_.degraded) {
    // Degraded stores answer DataLoss from quarantined buckets; keep the
    // strict locked path rather than auditing it under the OLC protocol.
    return;
  }
  epoch_mgr_ = epoch::EpochManager::Global();
  if (!tree_->concurrent_reads_enabled()) {
    tree_->EnableConcurrentReads(epoch_mgr_);
  }
  olc_enabled_ = true;
}

namespace {
/// Conflicts resolve in microseconds (one publication), so retry fast
/// and shallow before surrendering to the shared lock.
BackoffPolicy OlcReadRetryPolicy() {
  BackoffPolicy p;
  p.max_attempts = BmehStore::kOlcReadAttempts;
  p.base_delay_us = 1;
  p.max_delay_us = 100;
  p.total_budget_us = 1000;
  return p;
}
}  // namespace

std::shared_lock<std::shared_mutex> BmehStore::LockShared() const {
  // Back off while any mutator is waiting for or holding the lock.  The
  // reader could just as well block on the rwlock — the writer holds it
  // exclusively anyway — but a timed sleep keeps readers off the rwlock's
  // futex, which is what prevents the release-time thundering herd the
  // member comment describes.  No livelock: the gate drops the moment the
  // last pending mutator releases.  Capped exponential backoff keeps the
  // wakeup count low across a long hold (e.g. a checkpoint) while adding
  // at most ~1ms of post-release latency.
  uint64_t park_us = 10;
  while (writers_pending_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(park_us));
    park_us = std::min<uint64_t>(park_us * 2, 1000);
  }
  return std::shared_lock<std::shared_mutex>(op_mutex_);
}

bool BmehStore::TryGetOptimistic(const PseudoKey& key, Result<uint64_t>* res) {
  // The conflict-free pass is the hot path: no clock reads and no shared
  // cache-line traffic.  Retry bookkeeping materializes on first conflict.
  std::optional<Backoff> backoff;
  uint64_t t0 = 0;
  for (int attempt = 0;;) {
    bool conflict = false;
    bool unpinned = false;
    Result<uint64_t> found = [&]() -> Result<uint64_t> {
      epoch::Guard guard(epoch_mgr_);
      if (!guard.pinned()) {
        // All epoch reader slots taken: no reclamation protection, so the
        // optimistic descent is unsafe.  Degrade to the locked path.
        unpinned = true;
        return Status::Unavailable("epoch reader slots exhausted");
      }
      return tree_->SearchOptimistic(key, &conflict);
    }();
    if (unpinned) break;
    if (!conflict) {
      if (attempt > 0 && search_retried_latency_ != nullptr) {
        search_retried_latency_->Record(obs::MonotonicNanos() - t0);
      }
      *res = std::move(found);
      return true;
    }
    if (read_retries_total_ != nullptr) read_retries_total_->Inc();
    if (++attempt >= kOlcReadAttempts) break;
    if (!backoff.has_value()) {
      if (search_retried_latency_ != nullptr) t0 = obs::MonotonicNanos();
      backoff.emplace(OlcReadRetryPolicy(),
                      backoff_seed_.fetch_add(1, std::memory_order_relaxed));
    }
    SleepUs(backoff->NextDelayUs());  // Sleeps outside the epoch guard.
  }
  if (read_fallbacks_total_ != nullptr) read_fallbacks_total_->Inc();
  return false;
}

bool BmehStore::TryRangeOptimistic(const RangePredicate& pred,
                                   std::vector<Record>* out, Status* st) {
  std::optional<Backoff> backoff;
  uint64_t t0 = 0;
  for (int attempt = 0;;) {
    bool conflict = false;
    bool unpinned = false;
    Status walked = [&] {
      epoch::Guard guard(epoch_mgr_);
      if (!guard.pinned()) {  // Slots exhausted: take the locked path.
        unpinned = true;
        return Status::Unavailable("epoch reader slots exhausted");
      }
      return tree_->RangeSearchOptimistic(pred, out, &conflict);
    }();
    if (unpinned) break;
    if (!conflict) {
      if (attempt > 0 && range_retried_latency_ != nullptr) {
        range_retried_latency_->Record(obs::MonotonicNanos() - t0);
      }
      *st = std::move(walked);
      return true;
    }
    if (read_retries_total_ != nullptr) read_retries_total_->Inc();
    if (++attempt >= kOlcReadAttempts) break;
    if (!backoff.has_value()) {
      if (range_retried_latency_ != nullptr) t0 = obs::MonotonicNanos();
      backoff.emplace(OlcReadRetryPolicy(),
                      backoff_seed_.fetch_add(1, std::memory_order_relaxed));
    }
    SleepUs(backoff->NextDelayUs());
  }
  if (read_fallbacks_total_ != nullptr) read_fallbacks_total_->Inc();
  return false;
}

Result<std::unique_ptr<BmehStore>> BmehStore::Open(
    std::unique_ptr<PageStore> store, const StoreOptions& options) {
  if (options.max_pages > 0) store->SetMaxPages(options.max_pages);
  if (store->live_page_count() == 0) {
    return InitFresh(std::move(store), options);
  }
  return OpenExisting(std::move(store), options);
}

Result<std::unique_ptr<BmehStore>> BmehStore::Open(
    const std::string& path, const StoreOptions& options) {
  if (!FileExists(path)) {
    BMEH_ASSIGN_OR_RETURN(auto file,
                          FilePageStore::Create(path, options.page_size));
    if (options.max_pages > 0) file->SetMaxPages(options.max_pages);
    return InitFresh(std::move(file), options);
  }

  // Existing file: the on-disk free chain may be stale if the last close
  // was a crash, so open in recovery mode and rebuild the free list from
  // reachability once the superblock, image and WAL told us which pages
  // are live.
  BMEH_ASSIGN_OR_RETURN(auto file, FilePageStore::OpenForRecovery(path));
  if (options.max_pages > 0) file->SetMaxPages(options.max_pages);
  FilePageStore* raw = file.get();
  BMEH_ASSIGN_OR_RETURN(auto out, OpenExisting(std::move(file), options));

  if (out->degraded()) {
    // With verified corruption in play, "unreachable" can no longer be
    // distinguished from "reachable through a page we failed to read".
    // Adopt nothing: leaked pages are only wasted space, and fsck can
    // reclaim them after salvage.  The store stays alloc-capable by
    // growing the file instead of recycling.
    return out;
  }
  std::unordered_set<PageId> reachable;
  reachable.insert(out->super_page_);
  if (out->image_head_ != kInvalidPageId) {
    std::vector<PageId> image_pages;
    BMEH_RETURN_NOT_OK(BmehTree::CollectImagePages(
        out->store_.get(), out->image_head_, &image_pages));
    reachable.insert(image_pages.begin(), image_pages.end());
  }
  for (PageId id : out->wal_->pages()) reachable.insert(id);
  std::vector<PageId> free_pages;
  for (PageId id = 1; id < raw->page_count(); ++id) {
    if (reachable.count(id) == 0) free_pages.push_back(id);
  }
  BMEH_RETURN_NOT_OK(raw->AdoptFreeList(free_pages));
  return out;
}

Result<StoreInfo> BmehStore::Inspect(const std::string& path) {
  BMEH_ASSIGN_OR_RETURN(auto file, FilePageStore::OpenForRecovery(path));
  StoreInfo info;
  info.page_size = file->page_size();
  info.page_count = file->page_count();
  info.format_version = file->format_version();
  PageId head, wal_head;
  uint64_t generation, wal_base_lsn = 1;
  BMEH_RETURN_NOT_OK(ReadSuperblockFrom(file.get(), file->first_data_page(),
                                        &head, &generation, &wal_head,
                                        &wal_base_lsn));
  info.generation = generation;
  info.image_head = head;
  info.wal_head = wal_head;
  info.wal_base_lsn = wal_base_lsn;

  std::unique_ptr<BmehTree> tree;
  uint64_t image_pages = 0;
  if (head != kInvalidPageId) {
    std::vector<PageId> pages;
    BMEH_RETURN_NOT_OK(
        BmehTree::CollectImagePages(file.get(), head, &pages));
    image_pages = pages.size();
    BMEH_ASSIGN_OR_RETURN(tree, BmehTree::LoadFrom(file.get(), head));
  }
  // Count the replayed state without mutating the file (no tail
  // sanitization, no superblock rewrite).
  std::map<PseudoKey, uint64_t> scratch;
  Wal wal(file.get(), 0);
  wal.SetBaseLsn(wal_base_lsn);
  BMEH_RETURN_NOT_OK(wal.Replay(
      wal_head,
      [&](const Wal::LogRecord& rec) -> Status {
        if (tree != nullptr) return ApplyReplayed(tree.get(), rec);
        if (rec.op == Wal::kOpInsert) {
          scratch.emplace(rec.key, rec.payload);
        } else {
          scratch.erase(rec.key);
        }
        return Status::OK();
      },
      /*sanitize_tail=*/false));
  info.wal_records = wal.record_count();
  info.wal_pages = wal.pages().size();
  info.durable_lsn = wal.next_lsn() - 1;
  info.records = tree != nullptr ? tree->Stats().records : scratch.size();
  // Live pages after the recovery a real Open() would perform:
  // superblock + image chain + WAL chain.
  info.live_pages = 1 + image_pages + info.wal_pages;
  info.free_pages =
      info.page_count > info.live_pages + 1  // +1: the header page
          ? info.page_count - info.live_pages - 1
          : 0;
  info.high_water_pages = file->stats().high_water_pages;
  info.max_pages = file->max_pages();
  info.reserved_pages = file->reserved_pages();
  info.alloc_failures = file->stats().alloc_failures;
  info.read_retries = file->stats().read_retries;
  info.checksum_failures = file->stats().checksum_failures;
  info.pages_quarantined = file->stats().pages_quarantined;
  return info;
}

Status BmehStore::LogMutation(const Wal::LogRecord& rec) {
  if (wal_appends_total_ != nullptr) wal_appends_total_->Inc();
  obs::ScopedLatency timer(wal_append_latency_);
  obs::TraceSpan span(tracer_, "wal_append", "wal");
  Status st = wal_->Append(rec);
  if (!st.ok()) {
    // A transient append failure (page quota / ENOSPC) rolled itself back
    // completely — the log and the tree are still coherent, and the same
    // mutation can be retried once space frees.  Refuse just this
    // operation; poisoning is for failures that leave disk state unknown.
    if (!st.IsTransient()) poisoned_ = st;
    return st;
  }
  return PublishAppended();
}

Status BmehStore::PublishAppended() {
  Status st;
  if (wal_->head() != published_wal_head_) {
    // First record(s) of a fresh log: make the chain reachable from the
    // superblock (the publish syncs, covering the record pages as well).
    st = WriteSuperblock(image_head_, generation_, wal_->head(),
                         wal_->base_lsn());
    if (st.ok()) {
      published_wal_head_ = wal_->head();
      wal_->NoteSynced();
    }
  } else {
    st = wal_->MaybeSync();
  }
  if (!st.ok()) {
    // Past the append there is no rollback: the records are in the log
    // but their durability is unknown, so memory and disk must not
    // diverge further — whatever the failure's code.
    poisoned_ = st;
  }
  return st;
}

Status BmehStore::ApplyBatchLocked(std::span<const Wal::LogRecord> recs,
                                   std::vector<Status>* per_record) {
  auto fail_all = [&](const Status& st) {
    if (per_record != nullptr) per_record->assign(recs.size(), st);
    return st;
  };
  if (per_record != nullptr) per_record->assign(recs.size(), Status::OK());
  if (recs.empty()) return Status::OK();
  if (!poisoned_.ok()) return fail_all(poisoned_);
  // Validate every key before anything touches the log: a malformed key
  // fails the whole batch with nothing written (it could never replay).
  for (const Wal::LogRecord& rec : recs) {
    const Status st = tree_->schema().Validate(rec.key);
    if (!st.ok()) return fail_all(st);
  }
  if (wal_appends_total_ != nullptr) wal_appends_total_->Inc(recs.size());
  if (batch_writes_total_ != nullptr) batch_writes_total_->Inc();
  if (batch_records_ != nullptr) batch_records_->Record(recs.size());
  {
    obs::ScopedLatency timer(wal_append_latency_);
    obs::TraceSpan span(tracer_, "wal_append_batch", "wal");
    Status st = wal_->AppendBatch(recs);
    if (!st.ok()) {
      // Rolled back entirely on a transient failure — the batch can be
      // retried as a unit, same contract as a single append.
      if (!st.IsTransient()) poisoned_ = st;
      return fail_all(st);
    }
    st = PublishAppended();  // one superblock flip or one fsync for all
    if (!st.ok()) return fail_all(st);
  }
  // The batch is durable; apply it to the tree with exactly the tolerance
  // replay uses, so recovery reproduces live state record for record.
  Status first_logical = Status::OK();
  for (size_t i = 0; i < recs.size(); ++i) {
    const Wal::LogRecord& rec = recs[i];
    Status st = (rec.op == Wal::kOpInsert)
                    ? tree_->Insert(rec.key, rec.payload)
                    : tree_->Delete(rec.key);
    if (!st.ok() && !IsToleratedApplyOutcome(st)) {
      // A real (IO-grade) tree failure mid-batch: the log and the tree
      // have diverged, so poison — per-record statuses all report it,
      // since no acknowledgement can be trusted past this point.
      poisoned_ = st;
      return fail_all(st);
    }
    if (per_record != nullptr) (*per_record)[i] = st;
    if (first_logical.ok() && !st.ok()) first_logical = st;
  }
  // Every record is in the WAL, so every record counts as dirty — the
  // same arithmetic recovery uses (dirty_ops = replayed record count).
  dirty_ops_ += recs.size();
  BMEH_RETURN_NOT_OK(MaybeAutoCheckpointLocked());
  return first_logical;
}

Status BmehStore::Write(const WriteBatch& batch,
                        std::vector<Status>* per_record) {
  if (writes_total_ != nullptr) writes_total_->Inc(batch.size());
  OpScope op("write_batch", nullptr, tracer_, oplog_, shard_index_,
             &inject_op_delay_ns_);
  op.set_count(batch.size());
  Status st = [&]() -> Status {
    auto lock = LockExclusive();
    Status applied = ApplyBatchLocked(batch.records(), per_record);
    op.set_lsn(wal_->next_lsn() - 1);
    return applied;
  }();
  op.set_status(st);
  return st;
}

Status BmehStore::InsertBatch(std::span<const Record> recs) {
  WriteBatch batch;
  for (const Record& rec : recs) batch.Put(rec.key, rec.payload);
  return Write(batch);
}

Status BmehStore::DeleteBatch(std::span<const PseudoKey> keys) {
  WriteBatch batch;
  for (const PseudoKey& key : keys) batch.Delete(key);
  return Write(batch);
}

Status BmehStore::Put(const PseudoKey& key, uint64_t payload) {
  if (puts_total_ != nullptr) puts_total_->Inc();
  if (writes_total_ != nullptr) writes_total_->Inc();
  OpScope op("put", insert_latency_, tracer_, oplog_, shard_index_,
             &inject_op_delay_ns_);
  Status st = [&]() -> Status {
    // The schema is immutable after open, so validating outside the lock
    // is safe — and in group mode it fails malformed keys fast, before
    // they occupy a queue slot.
    BMEH_RETURN_NOT_OK(tree_->schema().Validate(key));
    if (committer_ != nullptr) {
      // Group path: the LSN is assigned on the commit thread; the wide
      // event keeps lsn 0 rather than racing for it.
      return committer_->Submit({Wal::kOpInsert, key, payload});
    }
    auto lock = LockExclusive();
    BMEH_RETURN_NOT_OK(poisoned_);
    BMEH_RETURN_NOT_OK(LogMutation({Wal::kOpInsert, key, payload}));
    op.set_lsn(wal_->next_lsn() - 1);
    BMEH_RETURN_NOT_OK(tree_->Insert(key, payload));
    ++dirty_ops_;
    return MaybeAutoCheckpointLocked();
  }();
  op.set_status(st);
  return st;
}

Result<uint64_t> BmehStore::Get(const PseudoKey& key) {
  if (gets_total_ != nullptr) gets_total_->Inc();
  OpScope op("get", search_latency_, tracer_, oplog_, shard_index_,
             &inject_op_delay_ns_);
  Result<uint64_t> res = [&]() -> Result<uint64_t> {
    Result<uint64_t> found{uint64_t{0}};
    if (olc_enabled_ && TryGetOptimistic(key, &found)) {
      // Lock-free fast path: no shared lock, so this read did not wait
      // out a concurrent writer's WAL fsync.
    } else {
      auto lock = LockShared();
      found = tree_->Search(key);
    }
    if (!found.ok() && found.status().IsKeyError() &&
        (report_.image_lost || report_.wal_data_loss)) {
      // When a whole image or a WAL suffix is gone, *any* absent key may
      // merely be lost — "not found" would be a silent wrong answer.
      return Status::DataLoss("key " + key.ToString() +
                              " not found, but the store lost data to "
                              "corruption; absence is not trustworthy");
    }
    return found;
  }();
  op.set_status(res.status());
  return res;
}

Status BmehStore::Delete(const PseudoKey& key) {
  if (deletes_total_ != nullptr) deletes_total_->Inc();
  if (writes_total_ != nullptr) writes_total_->Inc();
  OpScope op("delete", delete_latency_, tracer_, oplog_, shard_index_,
             &inject_op_delay_ns_);
  Status st = [&]() -> Status {
    BMEH_RETURN_NOT_OK(tree_->schema().Validate(key));
    if (committer_ != nullptr) {
      return committer_->Submit({Wal::kOpDelete, key, 0});
    }
    auto lock = LockExclusive();
    BMEH_RETURN_NOT_OK(poisoned_);
    BMEH_RETURN_NOT_OK(LogMutation({Wal::kOpDelete, key, 0}));
    op.set_lsn(wal_->next_lsn() - 1);
    BMEH_RETURN_NOT_OK(tree_->Delete(key));
    ++dirty_ops_;
    return MaybeAutoCheckpointLocked();
  }();
  op.set_status(st);
  return st;
}

Status BmehStore::Range(const RangePredicate& pred,
                        std::vector<Record>* out) {
  if (ranges_total_ != nullptr) ranges_total_->Inc();
  OpScope op("range", range_latency_, tracer_, oplog_, shard_index_,
             &inject_op_delay_ns_);
  Status st = [&]() -> Status {
    Status walked;
    if (olc_enabled_ && TryRangeOptimistic(pred, out, &walked)) {
      // Lock-free fast path (see Get).
    } else {
      auto lock = LockShared();
      walked = tree_->RangeSearch(pred, out);
    }
    if (walked.ok() && (report_.image_lost || report_.wal_data_loss)) {
      // The surviving matches are in `out`, but records destroyed with
      // the image / WAL suffix can no longer be enumerated.
      return Status::DataLoss(
          "range result is partial: the store lost data to corruption");
    }
    return walked;
  }();
  if (out != nullptr) op.set_count(out->size());
  op.set_status(st);
  return st;
}

Status BmehStore::MaybeAutoCheckpointLocked() {
  if (degraded()) return Status::OK();  // see Checkpoint()
  if (checkpoint_every_ > 0 && dirty_ops_ >= checkpoint_every_) {
    Status st = CheckpointLocked();
    if (!st.ok() && st.IsTransient() && poisoned_.ok()) {
      // The mutation that triggered this checkpoint is already logged and
      // applied; only the checkpoint found no space, and it rolled back
      // cleanly.  Defer it (dirty_ops_ keeps growing, the next mutation
      // retries) rather than fail an operation that succeeded.
      BMEH_LOG(Warning) << "auto-checkpoint deferred: " << st;
      return Status::OK();
    }
    return st;
  }
  return Status::OK();
}

Status BmehStore::Checkpoint() {
  auto lock = LockExclusive();
  return CheckpointLocked();
}

Status BmehStore::CheckpointLocked() {
  if (checkpoints_total_ != nullptr) checkpoints_total_->Inc();
  OpScope op("checkpoint", checkpoint_latency_, tracer_, oplog_,
             shard_index_, &inject_op_delay_ns_);
  // Armed only for the checkpoint's duration: a checkpoint stuck in an
  // image write or the publish fsync becomes a watchdog stall.
  obs::Watchdog::ArmedScope armed(checkpoint_hb_);
  Status st = CheckpointArmedLocked();
  op.set_lsn(wal_->next_lsn() - 1);
  op.set_status(st);
  return st;
}

Status BmehStore::CheckpointArmedLocked() {
  BMEH_RETURN_NOT_OK(poisoned_);
  if (degraded()) {
    // A checkpoint of the degraded state would replace the still-
    // diagnosable on-disk damage with a clean-looking image silently
    // missing the lost records.  Salvage into a fresh store instead.
    return Status::DataLoss(
        "refusing to checkpoint a store degraded by corruption");
  }
  // Seal the records this checkpoint is about to truncate into the
  // archive (when configured) *before* anything becomes unreachable; a
  // failed archive write fails the checkpoint with the log intact.
  BMEH_RETURN_NOT_OK(ArchiveWalLocked());
  BMEH_ASSIGN_OR_RETURN(PageId new_head, tree_->SaveTo(store_.get()));
  if (crash_before_publish_) {
    // Testing hook: the image is on disk but the superblock still points
    // at the previous checkpoint — exactly the state after a crash here.
    crash_before_publish_ = false;
    return Status::OK();
  }
  // The new image folds in every logged record, so the next WAL
  // incarnation starts right after the highest LSN assigned so far.
  Status publish = WriteSuperblock(new_head, generation_ + 1, kInvalidPageId,
                                   wal_->next_lsn());
  if (!publish.ok()) {
    // The flip (or its fsync) failed: the durable state is unknown, so
    // refuse further mutations rather than let memory and disk diverge.
    poisoned_ = publish;
    return publish;
  }
  // Publish succeeded: the new image and an empty WAL are the durable
  // truth.  Update in-memory state first, then reclaim the old chains —
  // a failed Free here leaks pages (reclaimed by the next recovery Open)
  // but cannot corrupt the published state.  While an online backup has
  // the old chains pinned, their frees are deferred to EndBackup() so
  // the pages cannot be recycled under the backup's page copies.
  const PageId old_image = image_head_;
  image_head_ = new_head;
  ++generation_;
  dirty_ops_ = 0;
  published_wal_head_ = kInvalidPageId;
  wal_->NoteSynced();
  if (backup_pins_ > 0) {
    if (old_image != kInvalidPageId) {
      deferred_image_frees_.push_back(old_image);
    }
    const std::vector<PageId> wal_pages = wal_->TruncateDeferred();
    deferred_page_frees_.insert(deferred_page_frees_.end(),
                                wal_pages.begin(), wal_pages.end());
    return Status::OK();
  }
  if (old_image != kInvalidPageId) {
    BMEH_RETURN_NOT_OK(BmehTree::FreeImage(store_.get(), old_image));
  }
  BMEH_RETURN_NOT_OK(wal_->Truncate());
  return Status::OK();
}

Status BmehStore::ArchiveWalLocked() {
  if (wal_archive_dir_.empty() || wal_->record_count() == 0) {
    return Status::OK();
  }
  // Create the archive directory (and, for a sharded store's per-shard
  // subdirectory, its parent) on first use; a real failure surfaces from
  // the segment write below.
  const size_t slash = wal_archive_dir_.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    ::mkdir(wal_archive_dir_.substr(0, slash).c_str(), 0755);
  }
  ::mkdir(wal_archive_dir_.c_str(), 0755);
  // Every append rewrites the tail page before acknowledging, so the
  // on-disk chain equals the in-memory log: a read-only replay collects
  // exactly the records about to be truncated, LSNs included.
  std::vector<Wal::LogRecord> records;
  records.reserve(wal_->record_count());
  Wal reader(store_.get(), 0);
  reader.SetBaseLsn(wal_->base_lsn());
  BMEH_RETURN_NOT_OK(reader.Replay(
      wal_->head(),
      [&records](const Wal::LogRecord& rec) -> Status {
        records.push_back(rec);
        return Status::OK();
      },
      /*sanitize_tail=*/false));
  if (records.size() != wal_->record_count()) {
    return Status::Corruption(
        "WAL archive collection saw " + std::to_string(records.size()) +
        " records where the live log holds " +
        std::to_string(wal_->record_count()));
  }
  return Wal::WriteSegmentFile(wal_archive_dir_, records,
                               wal_->base_lsn());
}

Result<BmehStore::BackupSnapshot> BmehStore::BeginBackup() {
  std::unique_lock<std::shared_mutex> lock(op_mutex_);
  BMEH_RETURN_NOT_OK(poisoned_);
  if (degraded()) {
    return Status::DataLoss(
        "refusing to back up a store degraded by corruption");
  }
  BackupSnapshot snap;
  snap.image_head = image_head_;
  snap.generation = generation_;
  snap.base_lsn = wal_->base_lsn();
  snap.watermark = wal_->next_lsn() - 1;
  if (image_head_ != kInvalidPageId) {
    BMEH_RETURN_NOT_OK(BmehTree::CollectImagePages(
        store_.get(), image_head_, &snap.image_pages));
  }
  if (wal_->record_count() > 0) {
    snap.wal_records.reserve(wal_->record_count());
    Wal reader(store_.get(), 0);
    reader.SetBaseLsn(wal_->base_lsn());
    BMEH_RETURN_NOT_OK(reader.Replay(
        wal_->head(),
        [&snap](const Wal::LogRecord& rec) -> Status {
          snap.wal_records.push_back(rec);
          return Status::OK();
        },
        /*sanitize_tail=*/false));
    if (snap.wal_records.size() != wal_->record_count()) {
      return Status::Corruption("backup WAL collection came up short");
    }
  }
  ++backup_pins_;
  return snap;
}

Status BmehStore::ReadPageForBackup(PageId id, std::vector<uint8_t>* out) {
  std::shared_lock<std::shared_mutex> lock(op_mutex_);
  out->resize(store_->page_size());
  return store_->Read(id, *out);
}

void BmehStore::EndBackup() {
  std::unique_lock<std::shared_mutex> lock(op_mutex_);
  if (backup_pins_ == 0) return;
  if (--backup_pins_ > 0) return;
  // Last pin released: perform the frees checkpoints deferred.  A failed
  // free only leaks pages (the next recovery Open reclaims them from
  // reachability), so log and keep going.
  for (PageId head : deferred_image_frees_) {
    Status st = BmehTree::FreeImage(store_.get(), head);
    if (!st.ok()) {
      BMEH_LOG(Warning) << "deferred image free leaked pages: " << st;
    }
  }
  deferred_image_frees_.clear();
  for (PageId id : deferred_page_frees_) {
    Status st = store_->Free(id);
    if (!st.ok()) {
      BMEH_LOG(Warning) << "deferred WAL page free leaked a page: " << st;
    }
  }
  deferred_page_frees_.clear();
}

Status internal::ReadStoreSuperblock(PageStore* store, PageId page,
                                     PageId* image_head, uint64_t* generation,
                                     PageId* wal_head,
                                     uint64_t* wal_base_lsn) {
  return ReadSuperblockFrom(store, page, image_head, generation, wal_head,
                            wal_base_lsn);
}

Status internal::WriteStoreSuperblock(PageStore* store, PageId page,
                                      PageId image_head, uint64_t generation,
                                      PageId wal_head,
                                      uint64_t wal_base_lsn) {
  return WriteSuperblockTo(store, page, image_head, generation, wal_head,
                           wal_base_lsn);
}

}  // namespace bmeh
