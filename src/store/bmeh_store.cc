#include "src/store/bmeh_store.h"

#include <sys/stat.h>

#include <cstring>

namespace bmeh {

namespace {

constexpr uint32_t kSuperMagic = 0x424d5342;  // "BMSB"
/// The superblock is the first page a fresh store allocates, so its id is
/// deterministic: the FilePageStore header is page 0, the superblock 1.
constexpr PageId kSuperblockPage = 1;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

BmehStore::BmehStore(std::unique_ptr<FilePageStore> store,
                     std::unique_ptr<BmehTree> tree, PageId image_head,
                     uint64_t generation, uint64_t checkpoint_every)
    : store_(std::move(store)),
      tree_(std::move(tree)),
      image_head_(image_head),
      generation_(generation),
      checkpoint_every_(checkpoint_every) {}

BmehStore::~BmehStore() {
  if (dirty_ops_ > 0) {
    Status st = Checkpoint();
    if (!st.ok()) {
      BMEH_LOG(Error) << "final checkpoint failed: " << st;
    }
  }
}

Status BmehStore::ReadSuperblock(PageId* head, uint64_t* generation) {
  std::vector<uint8_t> buf(store_->page_size());
  BMEH_RETURN_NOT_OK(store_->Read(kSuperblockPage, buf));
  uint32_t magic;
  std::memcpy(&magic, buf.data(), 4);
  if (magic != kSuperMagic) {
    return Status::Corruption("bad superblock magic");
  }
  std::memcpy(head, buf.data() + 4, 4);
  std::memcpy(generation, buf.data() + 8, 8);
  return Status::OK();
}

Status BmehStore::WriteSuperblock(PageId head, uint64_t generation) {
  std::vector<uint8_t> buf(store_->page_size(), 0);
  std::memcpy(buf.data(), &kSuperMagic, 4);
  std::memcpy(buf.data() + 4, &head, 4);
  std::memcpy(buf.data() + 8, &generation, 8);
  BMEH_RETURN_NOT_OK(store_->Write(kSuperblockPage, buf));
  return store_->Sync();
}

Result<std::unique_ptr<BmehStore>> BmehStore::Open(
    const std::string& path, const StoreOptions& options) {
  if (!FileExists(path)) {
    // Fresh store.
    BMEH_ASSIGN_OR_RETURN(auto file,
                          FilePageStore::Create(path, options.page_size));
    BMEH_ASSIGN_OR_RETURN(PageId super, file->Allocate());
    if (super != kSuperblockPage) {
      return Status::Corruption("unexpected superblock page id " +
                                std::to_string(super));
    }
    auto tree = std::make_unique<BmehTree>(options.schema, options.tree);
    auto store = std::unique_ptr<BmehStore>(
        new BmehStore(std::move(file), std::move(tree), kInvalidPageId, 0,
                      options.checkpoint_every));
    BMEH_RETURN_NOT_OK(
        store->WriteSuperblock(kInvalidPageId, /*generation=*/0));
    return store;
  }

  // Existing store.
  BMEH_ASSIGN_OR_RETURN(auto file, FilePageStore::Open(path));
  auto store = std::unique_ptr<BmehStore>(
      new BmehStore(std::move(file), nullptr, kInvalidPageId, 0,
                    options.checkpoint_every));
  PageId head;
  uint64_t generation;
  BMEH_RETURN_NOT_OK(store->ReadSuperblock(&head, &generation));
  store->image_head_ = head;
  store->generation_ = generation;
  if (head == kInvalidPageId) {
    store->tree_ =
        std::make_unique<BmehTree>(options.schema, options.tree);
  } else {
    BMEH_ASSIGN_OR_RETURN(store->tree_,
                          BmehTree::LoadFrom(store->store_.get(), head));
    if (!(store->tree_->schema() == options.schema)) {
      return Status::Invalid("schema mismatch: store has " +
                             store->tree_->schema().ToString() +
                             ", caller expects " +
                             options.schema.ToString());
    }
  }
  return store;
}

Status BmehStore::Put(const PseudoKey& key, uint64_t payload) {
  BMEH_RETURN_NOT_OK(tree_->Insert(key, payload));
  ++dirty_ops_;
  return MaybeAutoCheckpoint();
}

Result<uint64_t> BmehStore::Get(const PseudoKey& key) {
  return tree_->Search(key);
}

Status BmehStore::Delete(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(tree_->Delete(key));
  ++dirty_ops_;
  return MaybeAutoCheckpoint();
}

Status BmehStore::Range(const RangePredicate& pred,
                        std::vector<Record>* out) {
  return tree_->RangeSearch(pred, out);
}

Status BmehStore::MaybeAutoCheckpoint() {
  if (checkpoint_every_ > 0 && dirty_ops_ >= checkpoint_every_) {
    return Checkpoint();
  }
  return Status::OK();
}

Status BmehStore::Checkpoint() {
  BMEH_ASSIGN_OR_RETURN(PageId new_head, tree_->SaveTo(store_.get()));
  if (crash_before_publish_) {
    // Testing hook: the image is on disk but the superblock still points
    // at the previous checkpoint — exactly the state after a crash here.
    crash_before_publish_ = false;
    return Status::OK();
  }
  BMEH_RETURN_NOT_OK(WriteSuperblock(new_head, generation_ + 1));
  // Publish succeeded: reclaim the previous image (and with it, any chain
  // a crashed unpublished checkpoint may have leaked stays unreachable
  // but gets reclaimed below only if it was the published one; leaked
  // chains are reclaimed lazily by the next full rewrite of the file).
  if (image_head_ != kInvalidPageId) {
    BMEH_RETURN_NOT_OK(BmehTree::FreeImage(store_.get(), image_head_));
  }
  image_head_ = new_head;
  ++generation_;
  dirty_ops_ = 0;
  return Status::OK();
}

}  // namespace bmeh
