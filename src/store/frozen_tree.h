// FrozenBmehTree: a read-only, physically paged image of a BMEH-tree.
//
// SaveTo/LoadFrom (serialize.cc) stream the whole tree through a page
// chain — good for checkpoints, useless for page-at-a-time access.  A
// *frozen* tree instead gives every directory node and every data page
// its own store page, with child references translated to store page ids
// at freeze time.  Queries then run directly against the PageStore
// through a BufferPool: every directory probe and page fetch is a real
// page read, so the paper's logical disk-access model (lambda = height
// with the root pinned, Theorem 4's O(l * n_R) ranges) can be validated
// against physical I/O counts — see bench/physical_io.cc and
// tests/frozen_tree_test.cc.

#ifndef BMEH_STORE_FROZEN_TREE_H_
#define BMEH_STORE_FROZEN_TREE_H_

#include <memory>
#include <vector>

#include "src/core/bmeh_tree.h"
#include "src/pagestore/buffer_pool.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Read-only paged view of a frozen BMEH-tree.
class FrozenBmehTree {
 public:
  /// \brief Writes `tree` into `store`, one page per directory node and
  /// data page.  Returns the id of the metadata page.
  static Result<PageId> Freeze(const BmehTree& tree, PageStore* store);

  /// \brief Opens a frozen image.  `pool_pages` is the buffer-pool
  /// capacity in frames; the root node is fetched once and pinned, per
  /// the paper's convention.
  static Result<std::unique_ptr<FrozenBmehTree>> Open(PageStore* store,
                                                      PageId meta,
                                                      int pool_pages);

  /// \brief Exact-match search, reading pages through the buffer pool.
  Result<uint64_t> Search(const PseudoKey& key);

  /// \brief Partial-range query.
  Status RangeSearch(const RangePredicate& pred, std::vector<Record>* out);

  const KeySchema& schema() const { return schema_; }
  int height() const { return levels_; }
  uint64_t records() const { return records_; }
  int page_capacity() const { return page_capacity_; }

  /// \brief Physical page reads issued to the store since Open (buffer
  /// pool misses; hits served from memory are not disk accesses).
  uint64_t physical_reads() const {
    return store_->stats().reads - base_reads_;
  }
  uint64_t pool_hits() const { return pool_->hits(); }
  uint64_t pool_misses() const { return pool_->misses(); }

  /// \brief The underlying buffer pool, e.g. to AttachMetrics so the
  /// physical-I/O experiments export `bufferpool_*` alongside the logical
  /// model's counters.
  BufferPool* mutable_pool() { return pool_.get(); }

 private:
  FrozenBmehTree(PageStore* store, const KeySchema& schema,
                 int page_capacity, int levels, uint64_t records,
                 PageId root_page, int pool_pages);

  /// Fetches and decodes the directory node stored at `page`.
  Result<hashdir::DirNode> FetchNode(PageId page);
  /// Fetches and decodes the data page stored at `page`.
  Result<DataPage> FetchDataPage(PageId page);

  PageStore* store_;
  KeySchema schema_;
  int page_capacity_;
  int levels_;
  uint64_t records_;
  PageId root_page_;
  std::unique_ptr<BufferPool> pool_;
  // The root node, decoded once and pinned in memory.
  std::unique_ptr<hashdir::DirNode> root_;
  uint64_t base_reads_ = 0;
};

}  // namespace bmeh

#endif  // BMEH_STORE_FROZEN_TREE_H_
