#include "src/store/scrub.h"

#include <cstring>
#include <map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/store/wal.h"

namespace bmeh {

namespace {

/// Walks a [next u32 | ...] page chain starting at `head`, appending every
/// readable page to `out`.  Returns false when the walk was cut short (an
/// unreadable page, a cycle, or an out-of-range link).
bool WalkChainTolerant(PageStore* store, PageId head, uint64_t page_count,
                       std::vector<PageId>* out) {
  std::vector<uint8_t> buf(store->page_size());
  std::unordered_set<PageId> visited;
  PageId id = head;
  while (id != kInvalidPageId) {
    if (id >= page_count || !visited.insert(id).second) return false;
    if (!store->Read(id, buf).ok()) return false;
    out->push_back(id);
    std::memcpy(&id, buf.data(), 4);
  }
  return true;
}

/// The ordered (key -> payload) state a salvage pass accumulates.
using RecordMap = std::map<PseudoKey, uint64_t>;

void ApplySalvagedOp(const Wal::LogRecord& rec, RecordMap* state) {
  if (rec.op == Wal::kOpInsert) {
    state->emplace(rec.key, rec.payload);  // first write wins, as live
  } else {
    state->erase(rec.key);
  }
}

/// Detection proper; the public wrapper charges the metrics so every
/// return path is counted once.
Status ScrubStoreImpl(const std::string& path, ScrubReport* report) {
  BMEH_CHECK(report != nullptr);
  *report = ScrubReport{};
  auto opened = FilePageStore::OpenForRecovery(path);
  if (!opened.ok()) {
    if (opened.status().IsDataLoss() || opened.status().IsCorruption()) {
      // The header page itself is destroyed — detection succeeded, even
      // though nothing past the header can be scanned without it.
      report->structure_damaged = true;
      report->corrupt_pages.push_back(0);
      report->notes.push_back("header unusable: " +
                              opened.status().ToString());
      return Status::OK();
    }
    return opened.status();
  }
  auto file = std::move(opened).ValueOrDie();
  report->format_version = file->format_version();
  report->pages_scanned = file->page_count();
  if (file->header_damaged()) {
    report->structure_damaged = true;
    report->notes.push_back("file header failed verification");
    report->corrupt_pages.push_back(0);
  }

  // Pass 1: every physical page's trailer, independent of reachability —
  // bit rot in a free or leaked page matters too (it will be recycled).
  if (file->format_version() >= 2) {
    for (PageId id = file->header_damaged() ? 1 : 0; id < file->page_count();
         ++id) {
      const Status st = file->VerifyPage(id);
      if (st.IsDataLoss()) {
        report->corrupt_pages.push_back(id);
      } else if (!st.ok()) {
        report->structure_damaged = true;
        report->notes.push_back("page " + std::to_string(id) +
                                " unreadable: " + st.ToString());
      }
    }
  } else {
    report->notes.push_back(
        "legacy v1 store: pages carry no checksums; only structural "
        "checks ran (fsck --repair rewrites into the v2 format)");
  }

  // Pass 2: structural reachability — superblock, image chain, WAL chain.
  const PageId super_page = file->first_data_page();
  uint64_t reachable = 1;  // the header page
  PageId image_head = kInvalidPageId, wal_head = kInvalidPageId;
  uint64_t generation = 0;
  const Status super_st = internal::ReadStoreSuperblock(
      file.get(), super_page, &image_head, &generation, &wal_head);
  if (!super_st.ok()) {
    report->structure_damaged = true;
    report->notes.push_back("superblock unusable: " + super_st.ToString());
    return Status::OK();
  }
  ++reachable;  // the superblock

  if (image_head != kInvalidPageId) {
    std::vector<PageId> image_pages;
    if (!WalkChainTolerant(file.get(), image_head, file->page_count(),
                           &image_pages)) {
      report->structure_damaged = true;
      report->notes.push_back(
          "checkpoint image chain cut after " +
          std::to_string(image_pages.size()) + " page(s)");
    }
    reachable += image_pages.size();
  }
  if (wal_head != kInvalidPageId) {
    Wal wal(file.get(), 0);
    const Status replay = wal.Replay(
        wal_head, [](const Wal::LogRecord&) { return Status::OK(); },
        /*sanitize_tail=*/false);
    if (!replay.ok()) {
      report->structure_damaged = true;
      report->notes.push_back("WAL walk failed: " + replay.ToString());
    } else if (wal.replay_hit_data_loss()) {
      report->structure_damaged = true;
      report->notes.push_back("WAL chain cut by a corrupt page after " +
                              std::to_string(wal.record_count()) +
                              " record(s)");
    }
    reachable += wal.pages().size();
  }
  report->pages_reachable = reachable;
  return Status::OK();
}

}  // namespace

Status ScrubStore(const std::string& path, ScrubReport* report,
                  obs::MetricsRegistry* metrics) {
  obs::ScopedLatency timer(
      metrics != nullptr ? metrics->GetHistogram("scrub_latency_ns")
                         : nullptr);
  const Status st = ScrubStoreImpl(path, report);
  if (metrics != nullptr) {
    metrics->GetCounter("scrub_runs_total")->Inc();
    metrics->GetCounter("scrub_pages_scanned_total")
        ->Inc(report->pages_scanned);
    metrics->GetCounter("scrub_corrupt_pages_total")
        ->Inc(report->corrupt_pages.size());
    if (report->structure_damaged) {
      metrics->GetCounter("scrub_structure_damaged_total")->Inc();
    }
  }
  return st;
}

namespace {

/// Best-effort extraction when the tolerant BmehStore open is impossible
/// (superblock and directory both gone): try every page as an image head,
/// keep the candidate tree holding the most records, then overlay records
/// replayed from every WAL chain head found by magic scan.
Status SweepSalvage(FilePageStore* file, const StoreOptions& options,
                    RecordMap* state) {
  std::unique_ptr<BmehTree> best;
  for (PageId id = file->first_data_page(); id < file->page_count(); ++id) {
    TreeLoadReport tr;
    // An image chain page's payload starts with the "BMT1" magic only at
    // the true head, so false positives cannot survive the parse.
    auto cand = BmehTree::LoadFromTolerant(file, id, &tr);
    if (!cand.ok()) continue;
    auto tree = std::move(cand).ValueOrDie();
    if (!(tree->schema() == options.schema)) continue;
    if (best == nullptr ||
        tree->Stats().records > best->Stats().records) {
      best = std::move(tree);
    }
  }
  if (best != nullptr) {
    best->Scan([&](const Record& rec) {
      state->emplace(rec.key, rec.payload);
    });
  }

  // WAL pages announce themselves with a magic; a head is a WAL page no
  // other WAL page links to.  Replaying a chain applies a contiguous run
  // of logged mutations on top of whatever checkpoint was salvaged.
  std::vector<uint8_t> buf(file->page_size());
  std::unordered_set<PageId> wal_pages, linked;
  for (PageId id = file->first_data_page(); id < file->page_count(); ++id) {
    if (!file->Read(id, buf).ok()) continue;
    uint32_t magic, next;
    std::memcpy(&magic, buf.data(), 4);
    if (magic != Wal::kPageMagic) continue;
    std::memcpy(&next, buf.data() + 4, 4);
    wal_pages.insert(id);
    if (next != kInvalidPageId) linked.insert(next);
  }
  for (PageId head : wal_pages) {
    if (linked.count(head) != 0) continue;
    Wal wal(file, 0);
    Status ignored = wal.Replay(
        head,
        [&](const Wal::LogRecord& rec) {
          ApplySalvagedOp(rec, state);
          return Status::OK();
        },
        /*sanitize_tail=*/false);
    (void)ignored;  // a cut chain still contributed its valid prefix
  }
  if (best == nullptr && state->empty()) {
    return Status::DataLoss("no salvageable checkpoint or WAL records");
  }
  return Status::OK();
}

/// Extraction proper; the public wrapper charges the metrics.
Status SalvageStoreImpl(const std::string& src, const std::string& dst,
                        const StoreOptions& options, SalvageReport* report) {
  BMEH_CHECK(report != nullptr);
  *report = SalvageReport{};
  if (src == dst) {
    return Status::Invalid("salvage source and destination must differ");
  }

  // Read the source with raw primitives rather than a BmehStore open:
  // salvage must control the ordering (checkpoint records first, then the
  // WAL ops replayed on top) to avoid resurrecting deleted keys.
  std::unique_ptr<FilePageStore> file;
  auto src_open = FilePageStore::OpenForRecovery(src);
  if (src_open.ok()) {
    file = std::move(src_open).ValueOrDie();
  } else if (src_open.status().IsDataLoss() ||
             src_open.status().IsCorruption()) {
    // The header page is destroyed.  Reopen blind: geometry from the
    // caller, epoch recovered from any self-consistent page trailer.
    BMEH_ASSIGN_OR_RETURN(
        file, FilePageStore::OpenIgnoringHeader(src, options.page_size));
    report->source_degraded = true;
  } else {
    return src_open.status();
  }
  RecordMap state;
  PageId image_head = kInvalidPageId, wal_head = kInvalidPageId;
  uint64_t generation = 0;
  const Status super_st = internal::ReadStoreSuperblock(
      file.get(), file->first_data_page(), &image_head, &generation,
      &wal_head);
  if (super_st.ok()) {
    if (image_head != kInvalidPageId) {
      TreeLoadReport tr;
      auto loaded =
          BmehTree::LoadFromTolerant(file.get(), image_head, &tr);
      if (loaded.ok()) {
        auto tree = std::move(loaded).ValueOrDie();
        if (!(tree->schema() == options.schema)) {
          return Status::Invalid("schema mismatch: store has " +
                                 tree->schema().ToString() +
                                 ", caller expects " +
                                 options.schema.ToString());
        }
        if (tree->degraded() || !tr.complete) {
          report->source_degraded = true;
        }
        tree->Scan([&](const Record& rec) {
          state.emplace(rec.key, rec.payload);
        });
      } else {
        // The current checkpoint's directory is gone; an older image may
        // still be lying around unreferenced.
        report->source_degraded = true;
        report->used_sweep = true;
      }
    }
    if (!report->used_sweep) {
      Wal wal(file.get(), 0);
      BMEH_RETURN_NOT_OK(wal.Replay(
          wal_head,
          [&](const Wal::LogRecord& rec) {
            ApplySalvagedOp(rec, &state);
            return Status::OK();
          },
          /*sanitize_tail=*/false));
      if (wal.replay_hit_data_loss()) report->source_degraded = true;
    }
  } else {
    report->source_degraded = true;
    report->used_sweep = true;
  }
  if (report->used_sweep) {
    BMEH_RETURN_NOT_OK(SweepSalvage(file.get(), options, &state));
  }
  file.reset();  // release the flock before creating the destination

  // Write the salvaged state into a fresh store: batch (no per-record
  // fsync), one checkpoint at the end makes it durable and WAL-free.
  StoreOptions dst_options = options;
  dst_options.tolerate_corruption = false;
  dst_options.checkpoint_every = 0;
  dst_options.wal_sync_every = 0;
  BMEH_ASSIGN_OR_RETURN(
      auto fresh, FilePageStore::Create(dst, dst_options.page_size));
  BMEH_ASSIGN_OR_RETURN(auto out,
                        BmehStore::Open(std::move(fresh), dst_options));
  for (const auto& [key, payload] : state) {
    BMEH_RETURN_NOT_OK(out->Put(key, payload));
  }
  BMEH_RETURN_NOT_OK(out->Checkpoint());
  BMEH_RETURN_NOT_OK(out->mutable_tree()->Validate());
  report->records_recovered = state.size();
  return Status::OK();
}

}  // namespace

Status SalvageStore(const std::string& src, const std::string& dst,
                    const StoreOptions& options, SalvageReport* report,
                    obs::MetricsRegistry* metrics) {
  obs::ScopedLatency timer(
      metrics != nullptr ? metrics->GetHistogram("scrub_latency_ns")
                         : nullptr);
  const Status st = SalvageStoreImpl(src, dst, options, report);
  if (metrics != nullptr) {
    metrics->GetCounter("salvage_runs_total")->Inc();
    metrics->GetCounter("salvage_records_recovered_total")
        ->Inc(report->records_recovered);
    if (report->used_sweep) {
      metrics->GetCounter("salvage_sweeps_total")->Inc();
    }
  }
  return st;
}

}  // namespace bmeh
