// StorageUnit: one self-contained durability domain — a BMEH tree plus
// its own write-ahead log, group-commit thread, page device and quota,
// wrapped with a shard identity (index, file path, metrics label).
//
// This is the per-tree extraction the sharded store is built from: a
// ShardedStore owns N StorageUnits and routes records between them, and
// every durability property (crash recovery, checkpoint atomicity,
// resource backpressure) holds per unit because each unit is a complete
// BmehStore over its own file.  A unit never shares mutable state with
// its siblings, so writers on distinct units cannot contend — the whole
// point of sharding.
//
// A unit is also a *failure domain*: it can be down (its store failed to
// open, crashed, or was quarantined) while its siblings keep serving.
// Callers reach the store only through Acquire(), which hands out a Ref
// holding a shared lock for the duration of one operation; repair and
// reopen take the lock exclusively, so they wait for in-flight operations
// to drain and atomically swap the store underneath without ever exposing
// a half-repaired instance.  Acquire never blocks behind a repair — it
// fails fast (an empty Ref) so the facade can answer kUnavailable instead
// of stalling a caller on another shard's recovery.
//
// A StorageUnit attached to a shared MetricsRegistry charges the common
// operation counters and latency histograms (which therefore aggregate
// across units automatically) while publishing its sampled per-unit
// state — tree size, WAL depth, page-device counters — under a
// "shard<k>_" label so individual shards stay observable.

#ifndef BMEH_STORE_STORAGE_UNIT_H_
#define BMEH_STORE_STORAGE_UNIT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "src/store/bmeh_store.h"
#include "src/store/scrub.h"

namespace bmeh {

/// \brief What one RepairShard pass did to a shard.
struct ShardRepairReport {
  /// The scrub findings that decided the repair strategy.
  ScrubReport scrub;
  /// Repair had to rewrite the file from salvaged records (false = the
  /// file was structurally clean and a plain reopen sufficed).
  bool salvaged = false;
  /// Salvage details, meaningful only when `salvaged`.
  SalvageReport salvage;
};

/// \brief One shard of a ShardedStore: a BmehStore plus shard identity
/// and an independent up/down lifecycle.
class StorageUnit {
 public:
  /// \brief Opens (or creates) the unit's file at `path`.  Reopening
  /// after a crash replays this unit's WAL and rebuilds its free list —
  /// exactly BmehStore::Open(path) semantics, per shard.  The options'
  /// metrics_label is overwritten with this unit's "shard<k>_" label.
  static Result<std::unique_ptr<StorageUnit>> Open(int shard_index,
                                                   const std::string& path,
                                                   const StoreOptions& options);

  /// \brief Opens the unit over an injected page device (in-memory,
  /// fault-injecting, ...).  No free-list recovery — the seam the shard
  /// crash matrix and the scaling bench drive, mirroring the BmehStore
  /// PageStore overload.
  static Result<std::unique_ptr<StorageUnit>> Open(
      int shard_index, std::unique_ptr<PageStore> device,
      const StoreOptions& options);

  /// \brief Builds a unit that is down from the start — the placeholder a
  /// kPartial open installs for a shard whose store failed to open, so the
  /// facade keeps a slot (and a repair target) for it.  `reason` is the
  /// open failure, surfaced by down_reason().
  static std::unique_ptr<StorageUnit> Down(int shard_index, std::string path,
                                           const StoreOptions& options,
                                           Status reason);

  /// \brief A borrowed, lifetime-bounded handle to the unit's store.  The
  /// Ref holds the unit's shared lock until destroyed: while any Ref is
  /// alive the store cannot be swapped or torn down by repair.  An empty
  /// Ref (operator bool == false) means the unit is down or repairing.
  class Ref {
   public:
    Ref() = default;
    Ref(Ref&&) noexcept = default;
    Ref& operator=(Ref&&) noexcept = default;

    BmehStore* operator->() const { return store_; }
    BmehStore* get() const { return store_; }
    explicit operator bool() const { return store_ != nullptr; }

   private:
    friend class StorageUnit;
    Ref(std::shared_lock<std::shared_mutex> lock, BmehStore* store)
        : lock_(std::move(lock)), store_(store) {}

    std::shared_lock<std::shared_mutex> lock_;
    BmehStore* store_ = nullptr;
  };

  /// \brief Borrows the store for one operation.  Fails fast (empty Ref)
  /// when the unit is down or a repair holds the lock — never blocks a
  /// caller behind another shard's recovery.
  Ref Acquire() const {
    std::shared_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock() || store_ == nullptr) return Ref();
    return Ref(std::move(lock), store_.get());
  }

  /// \brief True when the unit currently has a live store serving traffic.
  bool healthy() const { return !down_.load(std::memory_order_acquire); }

  /// \brief Why the unit is down (OK when healthy).
  Status down_reason() const {
    std::lock_guard<std::mutex> g(reason_mu_);
    return down_reason_;
  }

  /// \brief Takes the unit down as a crash would: waits for in-flight
  /// operations to drain, then closes the store *without* checkpointing
  /// (the WAL keeps every synced record, exactly like a process crash
  /// scoped to this shard).  Traffic on sibling units is unaffected.
  void BringDown(Status reason);

  /// \brief Runs the scrub → salvage → reopen repair ladder on this
  /// unit's file and brings the unit back up on success.  Quiesces this
  /// unit only: the exclusive lock drains its in-flight operations while
  /// siblings keep serving.  A structurally clean file (e.g. after a mere
  /// crash) just reopens and replays its WAL; a damaged file is rewritten
  /// from salvaged records first.  On failure the unit stays down with
  /// the failure as its reason.  Invalid for device-backed units.
  Status Repair(ShardRepairReport* report = nullptr);

  /// \brief Cheap reopen attempt for a down unit (no scrub, no salvage) —
  /// the optimistic half of the repair lifecycle, for shards that went
  /// down for transient reasons (crash, ENOSPC at open).  Returns OK and
  /// marks the unit healthy when the open succeeds, the open error (unit
  /// stays down) when it does not, and Unavailable without waiting when a
  /// repair currently holds the lock.
  Status TryReopen();

  /// \brief Direct store access for owner-synchronized callers (tests,
  /// single-threaded setup).  nullptr while the unit is down.  Racy
  /// against BringDown/Repair — concurrent callers must use Acquire().
  BmehStore* store() { return store_.get(); }
  const BmehStore* store() const { return store_.get(); }

  int shard_index() const { return shard_index_; }

  /// \brief The unit's file path (empty for an injected device).
  const std::string& path() const { return path_; }

  /// \brief The "shard<k>_" prefix this unit's sampled metrics carry.
  static std::string MetricsLabel(int shard_index) {
    return "shard" + std::to_string(shard_index) + "_";
  }

  /// \brief Where this shard archives its WAL segments under a shared
  /// archive root.  Each shard has an independent LSN domain, so shards
  /// must never share one archive directory (their segment file names —
  /// keyed by LSN — would collide); Open() rewrites a configured
  /// StoreOptions::wal_archive_dir to this per-shard subdirectory.
  static std::string ShardArchiveDir(const std::string& root,
                                     int shard_index);

 private:
  StorageUnit(int shard_index, std::string path, StoreOptions options,
              std::unique_ptr<BmehStore> store)
      : shard_index_(shard_index),
        path_(std::move(path)),
        options_(std::move(options)),
        store_(std::move(store)) {
    down_.store(store_ == nullptr, std::memory_order_release);
  }

  /// Marks the unit down/up and records why.  Caller holds mu_ exclusive.
  void SetDown(Status reason);

  int shard_index_;
  std::string path_;
  /// Open options with the metrics label already applied — kept so the
  /// unit can reopen itself during repair.
  StoreOptions options_;

  /// Guards store_: shared for operations (via Ref), exclusive for
  /// BringDown / Repair / TryReopen swaps.
  mutable std::shared_mutex mu_;
  std::unique_ptr<BmehStore> store_;

  /// Lock-free health flag for reporting paths (Acquire() is the
  /// authoritative gate for operations).
  std::atomic<bool> down_{false};
  mutable std::mutex reason_mu_;
  Status down_reason_;
};

}  // namespace bmeh

#endif  // BMEH_STORE_STORAGE_UNIT_H_
