// StorageUnit: one self-contained durability domain — a BMEH tree plus
// its own write-ahead log, group-commit thread, page device and quota,
// wrapped with a shard identity (index, file path, metrics label).
//
// This is the per-tree extraction the sharded store is built from: a
// ShardedStore owns N StorageUnits and routes records between them, and
// every durability property (crash recovery, checkpoint atomicity,
// resource backpressure) holds per unit because each unit is a complete
// BmehStore over its own file.  A unit never shares mutable state with
// its siblings, so writers on distinct units cannot contend — the whole
// point of sharding.
//
// A StorageUnit attached to a shared MetricsRegistry charges the common
// operation counters and latency histograms (which therefore aggregate
// across units automatically) while publishing its sampled per-unit
// state — tree size, WAL depth, page-device counters — under a
// "shard<k>_" label so individual shards stay observable.

#ifndef BMEH_STORE_STORAGE_UNIT_H_
#define BMEH_STORE_STORAGE_UNIT_H_

#include <memory>
#include <string>
#include <utility>

#include "src/store/bmeh_store.h"

namespace bmeh {

/// \brief One shard of a ShardedStore: a BmehStore plus shard identity.
class StorageUnit {
 public:
  /// \brief Opens (or creates) the unit's file at `path`.  Reopening
  /// after a crash replays this unit's WAL and rebuilds its free list —
  /// exactly BmehStore::Open(path) semantics, per shard.  The options'
  /// metrics_label is overwritten with this unit's "shard<k>_" label.
  static Result<std::unique_ptr<StorageUnit>> Open(int shard_index,
                                                   const std::string& path,
                                                   const StoreOptions& options);

  /// \brief Opens the unit over an injected page device (in-memory,
  /// fault-injecting, ...).  No free-list recovery — the seam the shard
  /// crash matrix and the scaling bench drive, mirroring the BmehStore
  /// PageStore overload.
  static Result<std::unique_ptr<StorageUnit>> Open(
      int shard_index, std::unique_ptr<PageStore> device,
      const StoreOptions& options);

  BmehStore* store() { return store_.get(); }
  const BmehStore* store() const { return store_.get(); }

  int shard_index() const { return shard_index_; }

  /// \brief The unit's file path (empty for an injected device).
  const std::string& path() const { return path_; }

  /// \brief The "shard<k>_" prefix this unit's sampled metrics carry.
  static std::string MetricsLabel(int shard_index) {
    return "shard" + std::to_string(shard_index) + "_";
  }

 private:
  StorageUnit(int shard_index, std::string path,
              std::unique_ptr<BmehStore> store)
      : shard_index_(shard_index),
        path_(std::move(path)),
        store_(std::move(store)) {}

  int shard_index_;
  std::string path_;
  std::unique_ptr<BmehStore> store_;
};

}  // namespace bmeh

#endif  // BMEH_STORE_STORAGE_UNIT_H_
