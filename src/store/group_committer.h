// GroupCommitter: coalesces concurrent single-record writers into batched
// commits executed by one dedicated thread.
//
// Writers call Submit(), which enqueues the record and blocks until the
// commit thread has made it durable (or refused it).  The commit thread
// drains the queue into batches of up to `max_batch` records, optionally
// lingering `window_us` microseconds after the first record arrives so
// that closely-spaced writers share one WAL append chain and one fsync,
// then hands the batch to the owner-supplied CommitFn and wakes every
// waiter with its own record's status.
//
// Backpressure: the queue is bounded at `queue_depth` pending records.
// A Submit() that finds it full is refused immediately with
// Status::ResourceExhausted — the same retryable contract as a page-quota
// refusal, so callers already written against the store's exhaustion
// semantics need no new handling.
//
// Ack ordering: records are committed in submission order (the queue is
// FIFO and batches are contiguous prefixes), so when a waiter wakes with
// OK, every record submitted before its own is durable too.
//
// The committer knows nothing about WAL or tree internals — CommitFn
// owns all of that — so it can be tested standalone and cannot deadlock
// against store locks (it holds no committer lock while CommitFn runs).

#ifndef BMEH_STORE_GROUP_COMMITTER_H_
#define BMEH_STORE_GROUP_COMMITTER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/watchdog.h"
#include "src/store/wal.h"

namespace bmeh {

/// \brief Background thread that turns concurrent Submit()s into batches.
class GroupCommitter {
 public:
  struct Options {
    /// How long the commit thread lingers after the first queued record
    /// waiting for companions (0 = commit as soon as the thread wakes).
    uint64_t window_us = 0;
    /// Pending-record bound; a Submit() beyond it is refused with
    /// ResourceExhausted.
    size_t queue_depth = 1024;
    /// Largest batch handed to the CommitFn in one call.
    size_t max_batch = 256;
  };

  /// Commits `recs` as one durable batch and fills `results` (same size)
  /// with each record's individual outcome.  Runs on the commit thread
  /// with no committer lock held.
  using CommitFn = std::function<void(std::span<const Wal::LogRecord> recs,
                                      std::vector<Status>* results)>;

  GroupCommitter(const Options& options, CommitFn fn);
  ~GroupCommitter();  ///< Stops (draining pending records) and joins.

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// \brief Enqueues `rec` and blocks until the commit thread resolved
  /// it.  Returns the record's individual commit status; ResourceExhausted
  /// (retryable) when the queue is full or the committer is stopping.
  Status Submit(const Wal::LogRecord& rec);

  /// \brief Stops the commit thread after draining already-queued
  /// records; idempotent.  Subsequent Submit()s are refused.
  void Stop();

  /// \brief Optional metrics: `wal_group_commits_total`,
  /// `wal_batch_records`, `group_commit_wait_ns`,
  /// `group_commit_refused_total`.  Call before the first Submit().
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// \brief Registers (and arms) a heartbeat named `name` on `watchdog`
  /// that the commit thread beats every loop iteration — idle included,
  /// via bounded waits — so a commit thread stuck inside an fsync (or
  /// frozen, below) is raised as a stall within `deadline_ms`.
  /// Unregistered by Stop().  Call once, before heavy traffic.
  void AttachWatchdog(obs::Watchdog* watchdog, const std::string& name,
                      uint64_t deadline_ms);

  /// \brief Testing hook: while frozen the commit thread neither drains
  /// submissions nor beats its heartbeat — a deterministic stand-in for a
  /// hung fsync.  Stop() overrides a freeze so teardown never hangs.
  void FreezeForTesting(bool frozen);

  // Test/introspection counters (racy reads are fine: monotone).
  uint64_t batches_committed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t records_committed() const {
    return records_.load(std::memory_order_relaxed);
  }
  uint64_t submissions_refused() const {
    return refused_.load(std::memory_order_relaxed);
  }

 private:
  /// One blocked Submit(); lives on the submitter's stack for its whole
  /// queue residency (the submitter cannot return before `done`).
  struct Pending {
    const Wal::LogRecord* rec;
    Status result;
    bool done = false;
  };

  void Run();

  const Options options_;
  const CommitFn fn_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Queue became non-empty / stop.
  std::condition_variable done_cv_;  ///< Some batch was resolved.
  std::deque<Pending*> queue_;
  bool stopping_ = false;
  std::thread thread_;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> refused_{0};

  obs::Counter* group_commits_total_ = nullptr;
  obs::Counter* refused_total_ = nullptr;
  obs::Histogram* wait_ns_ = nullptr;

  /// Watchdog wiring (atomics: the commit thread is already running when
  /// AttachWatchdog publishes the heartbeat).
  obs::Watchdog* watchdog_ = nullptr;
  std::atomic<obs::Watchdog::Heartbeat*> heartbeat_{nullptr};
  std::atomic<uint64_t> beat_interval_ms_{1000};
  std::atomic<bool> frozen_{false};
};

}  // namespace bmeh

#endif  // BMEH_STORE_GROUP_COMMITTER_H_
