// ShardedStore: N independent BMEH trees behind one facade.
//
// Records are routed by the top log2(N) bits of the order-preserving ψ
// pseudo-key — the bit-interleaved (z-order) digit string the paper's
// directory addresses with, taken round-robin across dimensions,
// most-significant bit first.  Each of the N shards is a complete
// StorageUnit (tree + WAL + group committer + page device + quota) over
// its own file, so:
//
//  * writers on distinct shards never touch shared state (no global
//    lock, no shared WAL tail, independently overlapping fsyncs);
//  * recovery replays the shard WALs in parallel, one thread per shard;
//  * checkpoints are per shard — a small fsync blast radius, and a
//    crashed shard recovers on its own while its siblings' committed
//    data is untouched;
//  * because the routing prefix is the most significant ψ digits, every
//    shard owns one contiguous ψ range, and Range() can merge the
//    per-shard results with an ordered k-way cursor merge that
//    preserves global ψ order across shard boundaries.
//
// On disk a sharded store is a directory:
//
//     <dir>/MANIFEST          routing + shape, CRC-sealed (see
//                             ShardManifest)
//     <dir>/shard-0000.bmeh   one BmehStore file per shard
//     <dir>/shard-0001.bmeh   ...
//
// Every shard file carries its own flock, so a second open of the same
// directory fails exactly like a double open of a single-file store.
//
// WriteBatch semantics: a batch is split into per-shard sub-batches that
// commit independently (each sub-batch keeps the single-store
// all-or-nothing crash atomicity).  Per-record statuses are mapped back
// to the caller's original order; the batch-level status is the first
// non-OK per-record status in that order.  A malformed key fails the
// whole batch up front with nothing written anywhere.  With one shard a
// ShardedStore is behaviorally identical to a BmehStore.

#ifndef BMEH_STORE_SHARDED_STORE_H_
#define BMEH_STORE_SHARDED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/backoff.h"
#include "src/store/backup.h"
#include "src/store/storage_unit.h"

namespace bmeh {

/// \brief ψ-prefix routing and ordering over interleaved pseudo-keys.
struct ShardRouter {
  /// \brief The shard owning `key`: the first `shard_bits` bits of the
  /// interleaved ψ digit string (dimension-round-robin, MSB first;
  /// dimensions narrower than the current round are skipped, matching
  /// the paper's treatment of shorter digit strings).
  static int ShardOf(const PseudoKey& key, const KeySchema& schema,
                     int shard_bits);

  /// \brief Strict weak order by the full interleaved ψ digit string —
  /// the z-order the shards partition, and the order Range() returns.
  static bool PsiLess(const PseudoKey& a, const PseudoKey& b,
                      const KeySchema& schema);
};

/// \brief The durable routing contract of a sharded store directory.
/// Text file `<dir>/MANIFEST`, CRC-sealed; every field must match the
/// opener's expectations (schema) or is authoritative (shards,
/// page_size).
struct ShardManifest {
  int shards = 1;      ///< Power of two.
  int shard_bits = 0;  ///< log2(shards), the routing prefix length.
  int page_size = kDefaultPageSize;
  KeySchema schema{2, 31};
};

/// \brief How Open() treats shards that fail to open or recover.
enum class OpenPolicy {
  /// Any shard failure fails the whole open (the conservative default:
  /// a caller that never checks per-shard health sees all-or-nothing).
  kStrict,
  /// Bring up every healthy shard; a failed shard becomes a down unit
  /// whose keys answer kUnavailable until RepairShard() /
  /// TryReopenDownShards() brings it back.  The open only fails when no
  /// shard at all comes up.
  kPartial,
};

/// \brief Configuration for opening / creating a sharded store.
struct ShardedStoreOptions {
  /// Shard count.  Creating: must be a power of two >= 1.  Opening an
  /// existing directory: 0 (the default) adopts the manifest's count,
  /// any other value must match the manifest.
  int shards = 0;
  /// Per-shard store options (schema, page size, WAL sync policy, group
  /// commit, quota — the quota applies per shard).  A metrics registry
  /// here is shared by every shard: operation counters and latency
  /// histograms aggregate across shards automatically, while sampled
  /// per-shard state is published under a "shard<k>_" label.
  StoreOptions store;
  /// Whether a shard that fails to open takes the whole store with it.
  OpenPolicy open_policy = OpenPolicy::kStrict;
  /// Facade-level retry for per-shard transient failures (quota
  /// backpressure, a shard mid-repair).  Every routed operation retries
  /// under this policy with decorrelated jitter before surfacing the
  /// transient status; max_attempts <= 1 disables retry.
  BackoffPolicy retry;
};

/// \brief Durable state of a sharded store directory (Inspect).
struct ShardedStoreInfo {
  int shards = 0;
  int shard_bits = 0;
  int page_size = 0;
  uint64_t records = 0;      ///< Sum over healthy shards, replayed WALs
                             ///< included.
  uint64_t wal_records = 0;  ///< Sum over healthy shards.
  uint64_t page_count = 0;   ///< Sum over healthy shards.
  std::vector<StoreInfo> shard;
  /// Per-shard inspect outcome (OK, or why the shard is unreadable); a
  /// non-OK slot leaves a default StoreInfo in `shard`.
  std::vector<Status> shard_status;
  /// Shards whose files could not be inspected.
  int down_shards = 0;
};

/// \brief Outcome of ShardedStore::Backup across shards.  A backup set
/// with failed shards is still sealed (the super-manifest records the
/// failure honestly); restoring it yields a store that opens degraded
/// under OpenPolicy::kPartial instead of not at all.
struct ShardBackupInfo {
  int shards = 0;
  int failed = 0;          ///< Shards whose backup failed (recorded, not hidden).
  uint64_t bytes = 0;      ///< Payload bytes across all shard sets.
  std::vector<Status> shard_status;
  std::vector<uint64_t> watermark;  ///< Per-shard LSN watermark (0 on failure).
};

/// \brief Outcome of ShardedStore::Restore across shards.
struct ShardRestoreInfo {
  int shards = 0;
  int failed = 0;  ///< Shards not restored (absent from the set, or refused).
  std::vector<Status> shard_status;
  std::vector<uint64_t> replay_lsn;  ///< Per-shard LSN reached (0 on failure).
};

/// \brief Parsed sharded-backup super-manifest (see
/// ShardedStore::Backup).
struct ShardBackupSetInfo {
  int shards = 0;
  int shard_bits = 0;
  int page_size = 0;
  KeySchema schema{2, 31};
  struct ShardEntry {
    bool ok = false;
    uint64_t watermark = 0;
    std::string subdir;  ///< Per-shard backup set, relative to the set dir.
    std::string error;   ///< Why the shard's backup failed (ok == false).
  };
  std::vector<ShardEntry> shard;
};

/// \brief N independent BMEH stores routed by the top ψ bits.
class ShardedStore {
 public:
  ~ShardedStore();
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  /// \brief Opens `dir`, creating the directory, manifest and shard
  /// files when it does not exist.  Reopening after a crash recovers
  /// every shard (WAL replay + free-list rebuild) in parallel, one
  /// thread per shard.
  static Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& dir, const ShardedStoreOptions& options);

  /// \brief Opens over injected page devices, one per shard (the count
  /// must be a power of two).  No directory, manifest or free-list
  /// recovery — the seam the shard crash matrix and the scaling bench
  /// drive.
  static Result<std::unique_ptr<ShardedStore>> Open(
      std::vector<std::unique_ptr<PageStore>> devices,
      const ShardedStoreOptions& options);

  /// \brief Reads the durable state of every shard without mutating it.
  static Result<ShardedStoreInfo> Inspect(const std::string& dir);

  /// \brief True when `path` is a sharded store directory (manifest
  /// present and well-formed).
  static bool IsShardedDir(const std::string& path);

  /// \brief Reads / writes `<dir>/MANIFEST` — public so the offline
  /// tooling (fsck --repair into a fresh sharded directory) shares the
  /// format with Open().  WriteManifest creates `dir` if needed.
  static Result<ShardManifest> ReadManifest(const std::string& dir);
  static Status WriteManifest(const std::string& dir,
                              const ShardManifest& manifest);

  /// \brief The shard file path for `shard_index` under `dir`.
  static std::string ShardPath(const std::string& dir, int shard_index);

  /// \brief Single-record operations: validate, route by ψ prefix,
  /// delegate to the owning unit.  Same contracts as BmehStore, plus the
  /// failure-domain contract: a key routed to a down shard answers
  /// kUnavailable (after the retry policy is exhausted), and transient
  /// per-shard failures are retried with jittered backoff first.
  Status Put(const PseudoKey& key, uint64_t payload);
  Result<uint64_t> Get(const PseudoKey& key);
  Status Delete(const PseudoKey& key);

  /// \brief Applies `batch` split into per-shard sub-batches, each
  /// committed independently with single-store batch atomicity.
  /// `per_record` (optional) receives each member's status in the
  /// caller's original order; the returned status is the first non-OK
  /// of those.  There is no cross-shard atomicity: a hard failure on
  /// one shard does not undo sibling sub-batches — the per-record
  /// statuses say exactly which members are durable.
  Status Write(const WriteBatch& batch,
               std::vector<Status>* per_record = nullptr);

  Status InsertBatch(std::span<const Record> recs);
  Status DeleteBatch(std::span<const PseudoKey> keys);

  /// \brief Partial-range query over all shards.  The result is in
  /// global ψ (z-)order: each shard's matches are sorted by ψ and the
  /// per-shard cursors k-way merged — since shards own contiguous ψ
  /// ranges the merge preserves order across shard boundaries.  Shards
  /// with no matches contribute nothing.  Partiality is never silent:
  /// when a shard is unavailable the surviving matches are still merged
  /// into `out`, `*partial` (if given) is set, and the status is
  /// kUnavailable; DataLoss from a degraded shard is reported the same
  /// way after all shards were collected.  Unavailable outranks DataLoss
  /// when both apply.
  Status Range(const RangePredicate& pred, std::vector<Record>* out,
               bool* partial = nullptr);

  /// \brief Checkpoints every shard (each an independent atomic
  /// superblock flip).  All healthy shards are attempted; the first
  /// failure (kUnavailable for a down shard) is returned.
  Status Checkpoint();

  /// \brief Online backup of every shard into one set directory:
  ///
  ///     <out_dir>/SHARDBACKUP    CRC-sealed super-manifest (routing
  ///                              shape + per-shard outcome/watermark)
  ///     <out_dir>/shard-0000/    one BackupStore set per shard
  ///
  /// Shards are backed up in parallel while writers keep committing
  /// (each shard's BackupStore::Run pins its published checkpoint).  A
  /// down or failing shard does not abort the run: its failure is
  /// recorded in the super-manifest and in the returned ShardBackupInfo
  /// (`failed` > 0 — the CLI maps this to a partial exit code); only
  /// when every shard fails is the whole backup refused.  With
  /// `options.base_set` naming a previous sharded set, each shard takes
  /// an incremental against its counterpart (options.wal_archive_dir is
  /// the shared archive root; the per-shard subdirectories are derived).
  Result<ShardBackupInfo> Backup(const std::string& out_dir,
                                 const BackupOptions& options = {});

  /// \brief Restores a sharded backup set into a fresh store directory
  /// at `dest_dir` (manifest + shard files), shard by shard in parallel.
  /// `options.to_lsn` is a per-shard target: each shard replays to
  /// min(to_lsn, its own watermark) — LSN domains are independent, so a
  /// global cut is expressed as a per-shard clamp (0 = every shard to
  /// its watermark).  A shard recorded as failed in the super-manifest
  /// — or whose archive is refused — is skipped: its file is absent and
  /// a subsequent Open with OpenPolicy::kPartial serves the restored
  /// shards while the missing one answers kUnavailable.  Only when no
  /// shard restores is the whole restore refused.
  static Result<ShardRestoreInfo> Restore(const std::string& set_dir,
                                          const std::string& dest_dir,
                                          const RestoreOptions& options = {});

  /// \brief Reads and CRC-verifies a sharded set's super-manifest.
  static Result<ShardBackupSetInfo> ReadBackupManifest(
      const std::string& set_dir);

  /// \brief True when `path` holds a sharded backup set (super-manifest
  /// present and well-formed).
  static bool IsShardedBackupDir(const std::string& path);

  /// \brief Runs the scrub → salvage → reopen repair ladder on shard `i`
  /// and brings it back into service on success.  Only that shard's
  /// traffic quiesces (its unit's exclusive lock); siblings keep serving
  /// throughout, so a store opened kPartial regains full service without
  /// reopening.  Works on healthy shards too (offline-style fsck of one
  /// shard under a live store).
  Status RepairShard(int i, ShardRepairReport* report = nullptr);

  /// \brief Optimistic plain reopen of every down shard (no scrub or
  /// salvage — the cheap path for shards that went down transiently).
  /// Returns how many came back up; shards that still fail stay down
  /// with their reason updated.
  int TryReopenDownShards();

  /// \brief Takes shard `i` down as a crash would (close without
  /// checkpoint, WAL preserved), draining its in-flight operations
  /// first.  Traffic to siblings is unaffected; keys routed here answer
  /// kUnavailable until repair/reopen.  The chaos harness's crash lever,
  /// and an operator's quarantine lever.
  Status BringDownShard(int i);

  /// \brief Per-shard health (lock-free snapshot).
  bool shard_healthy(int i) const { return units_[i]->healthy(); }
  /// \brief Why shard `i` is down (OK when healthy).
  Status shard_down_reason(int i) const { return units_[i]->down_reason(); }
  /// \brief How many shards are currently down.
  int down_shards() const;

  int shards() const { return static_cast<int>(units_.size()); }
  int shard_bits() const { return shard_bits_; }
  const KeySchema& schema() const { return schema_; }

  /// \brief The shard `key` routes to.
  int ShardOf(const PseudoKey& key) const {
    return ShardRouter::ShardOf(key, schema_, shard_bits_);
  }

  /// \brief Per-shard introspection (test assertions, tooling).
  /// nullptr while shard `i` is down; racy against concurrent
  /// BringDownShard/RepairShard — owner-synchronized callers only.
  BmehStore* shard(int i) { return units_[i]->store(); }
  const StorageUnit& unit(int i) const { return *units_[i]; }

  /// \brief Records across all healthy shards (owner-synchronized, like
  /// the per-store accessors it sums).
  uint64_t records() const;
  /// \brief WAL records across all healthy shards.
  uint64_t wal_records() const;
  /// \brief Mutations since the last checkpoint, across healthy shards.
  uint64_t dirty_ops() const;
  /// \brief True when any shard is down or its open had to work around
  /// corruption.
  bool degraded() const;

  /// \brief Testing hook: poisons every shard so teardown performs no
  /// final checkpoint (the per-shard files keep their WALs).
  void SimulateCrashForTesting();

  /// \brief Testing hook: process death — poisons every shard and drops
  /// the file descriptors of file-backed shards without the clean-close
  /// header flush, so only completed page writes survive.
  void SimulateProcessCrashForTesting();

  /// \brief Testing hook: disables fsync on every file-backed shard.
  void DisableFsyncForTesting();

 private:
  ShardedStore(std::vector<std::unique_ptr<StorageUnit>> units,
               int shard_bits, const ShardedStoreOptions& options);

  /// Opens every unit concurrently (one thread per shard) and builds the
  /// facade.  kStrict: on any failure the already-opened units are
  /// poisoned before destruction so a failed open never mutates shard
  /// files.  kPartial: failed shards become down placeholder units and
  /// the open succeeds as long as at least one shard came up.
  static Result<std::unique_ptr<ShardedStore>> OpenUnits(
      const std::string& dir, int shards, const ShardedStoreOptions& options);

  /// Runs `op` against shard `s` under the facade retry policy: borrow
  /// the unit (kUnavailable when down/repairing), invoke, and on a
  /// transient status sleep a jittered backoff delay and try again until
  /// the policy's attempt/budget bound.  Wait time is charged to the
  /// store_retry_backoff_ns histogram.
  Status RunWithRetry(int s, const std::function<Status(BmehStore*)>& op);

  /// Deterministic per-call seed for the backoff jitter (SplitMix64 of a
  /// global sequence number and the shard index).
  uint64_t NextRetrySeed(int s);

  std::vector<std::unique_ptr<StorageUnit>> units_;
  int shard_bits_ = 0;
  KeySchema schema_;
  BackoffPolicy retry_;
  obs::Tracer* tracer_ = nullptr;
  /// Facade-level wide events: "shard_retry" (an op needed the backoff
  /// loop) and "shard_repair" / "shard_down" lifecycle markers.
  obs::OpLog* oplog_ = nullptr;
  /// Repair runs register a transient per-repair heartbeat here so a
  /// repair stuck in scrub/salvage raises a stall.
  obs::Watchdog* watchdog_ = nullptr;
  uint64_t watchdog_deadline_ms_ = 5000;
  /// Aggregate sampled source (tree records / WAL depth summed across
  /// shards under the unlabeled names a single store would publish).
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
  /// Retry/availability instrumentation (null without a registry).
  obs::Counter* retries_total_ = nullptr;
  obs::Counter* unavailable_total_ = nullptr;
  obs::Counter* repairs_total_ = nullptr;
  obs::Histogram* backoff_ns_ = nullptr;
  std::atomic<uint64_t> retry_seq_{0};
};

}  // namespace bmeh

#endif  // BMEH_STORE_SHARDED_STORE_H_
