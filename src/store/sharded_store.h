// ShardedStore: N independent BMEH trees behind one facade.
//
// Records are routed by the top log2(N) bits of the order-preserving ψ
// pseudo-key — the bit-interleaved (z-order) digit string the paper's
// directory addresses with, taken round-robin across dimensions,
// most-significant bit first.  Each of the N shards is a complete
// StorageUnit (tree + WAL + group committer + page device + quota) over
// its own file, so:
//
//  * writers on distinct shards never touch shared state (no global
//    lock, no shared WAL tail, independently overlapping fsyncs);
//  * recovery replays the shard WALs in parallel, one thread per shard;
//  * checkpoints are per shard — a small fsync blast radius, and a
//    crashed shard recovers on its own while its siblings' committed
//    data is untouched;
//  * because the routing prefix is the most significant ψ digits, every
//    shard owns one contiguous ψ range, and Range() can merge the
//    per-shard results with an ordered k-way cursor merge that
//    preserves global ψ order across shard boundaries.
//
// On disk a sharded store is a directory:
//
//     <dir>/MANIFEST          routing + shape, CRC-sealed (see
//                             ShardManifest)
//     <dir>/shard-0000.bmeh   one BmehStore file per shard
//     <dir>/shard-0001.bmeh   ...
//
// Every shard file carries its own flock, so a second open of the same
// directory fails exactly like a double open of a single-file store.
//
// WriteBatch semantics: a batch is split into per-shard sub-batches that
// commit independently (each sub-batch keeps the single-store
// all-or-nothing crash atomicity).  Per-record statuses are mapped back
// to the caller's original order; the batch-level status is the first
// non-OK per-record status in that order.  A malformed key fails the
// whole batch up front with nothing written anywhere.  With one shard a
// ShardedStore is behaviorally identical to a BmehStore.

#ifndef BMEH_STORE_SHARDED_STORE_H_
#define BMEH_STORE_SHARDED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/store/storage_unit.h"

namespace bmeh {

/// \brief ψ-prefix routing and ordering over interleaved pseudo-keys.
struct ShardRouter {
  /// \brief The shard owning `key`: the first `shard_bits` bits of the
  /// interleaved ψ digit string (dimension-round-robin, MSB first;
  /// dimensions narrower than the current round are skipped, matching
  /// the paper's treatment of shorter digit strings).
  static int ShardOf(const PseudoKey& key, const KeySchema& schema,
                     int shard_bits);

  /// \brief Strict weak order by the full interleaved ψ digit string —
  /// the z-order the shards partition, and the order Range() returns.
  static bool PsiLess(const PseudoKey& a, const PseudoKey& b,
                      const KeySchema& schema);
};

/// \brief The durable routing contract of a sharded store directory.
/// Text file `<dir>/MANIFEST`, CRC-sealed; every field must match the
/// opener's expectations (schema) or is authoritative (shards,
/// page_size).
struct ShardManifest {
  int shards = 1;      ///< Power of two.
  int shard_bits = 0;  ///< log2(shards), the routing prefix length.
  int page_size = kDefaultPageSize;
  KeySchema schema{2, 31};
};

/// \brief Configuration for opening / creating a sharded store.
struct ShardedStoreOptions {
  /// Shard count.  Creating: must be a power of two >= 1.  Opening an
  /// existing directory: 0 (the default) adopts the manifest's count,
  /// any other value must match the manifest.
  int shards = 0;
  /// Per-shard store options (schema, page size, WAL sync policy, group
  /// commit, quota — the quota applies per shard).  A metrics registry
  /// here is shared by every shard: operation counters and latency
  /// histograms aggregate across shards automatically, while sampled
  /// per-shard state is published under a "shard<k>_" label.
  StoreOptions store;
};

/// \brief Durable state of a sharded store directory (Inspect).
struct ShardedStoreInfo {
  int shards = 0;
  int shard_bits = 0;
  int page_size = 0;
  uint64_t records = 0;      ///< Sum over shards, replayed WALs included.
  uint64_t wal_records = 0;  ///< Sum over shards.
  uint64_t page_count = 0;   ///< Sum over shards.
  std::vector<StoreInfo> shard;
};

/// \brief N independent BMEH stores routed by the top ψ bits.
class ShardedStore {
 public:
  ~ShardedStore();
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  /// \brief Opens `dir`, creating the directory, manifest and shard
  /// files when it does not exist.  Reopening after a crash recovers
  /// every shard (WAL replay + free-list rebuild) in parallel, one
  /// thread per shard.
  static Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& dir, const ShardedStoreOptions& options);

  /// \brief Opens over injected page devices, one per shard (the count
  /// must be a power of two).  No directory, manifest or free-list
  /// recovery — the seam the shard crash matrix and the scaling bench
  /// drive.
  static Result<std::unique_ptr<ShardedStore>> Open(
      std::vector<std::unique_ptr<PageStore>> devices,
      const ShardedStoreOptions& options);

  /// \brief Reads the durable state of every shard without mutating it.
  static Result<ShardedStoreInfo> Inspect(const std::string& dir);

  /// \brief True when `path` is a sharded store directory (manifest
  /// present and well-formed).
  static bool IsShardedDir(const std::string& path);

  /// \brief Reads / writes `<dir>/MANIFEST` — public so the offline
  /// tooling (fsck --repair into a fresh sharded directory) shares the
  /// format with Open().  WriteManifest creates `dir` if needed.
  static Result<ShardManifest> ReadManifest(const std::string& dir);
  static Status WriteManifest(const std::string& dir,
                              const ShardManifest& manifest);

  /// \brief The shard file path for `shard_index` under `dir`.
  static std::string ShardPath(const std::string& dir, int shard_index);

  /// \brief Single-record operations: validate, route by ψ prefix,
  /// delegate to the owning unit.  Same contracts as BmehStore.
  Status Put(const PseudoKey& key, uint64_t payload);
  Result<uint64_t> Get(const PseudoKey& key);
  Status Delete(const PseudoKey& key);

  /// \brief Applies `batch` split into per-shard sub-batches, each
  /// committed independently with single-store batch atomicity.
  /// `per_record` (optional) receives each member's status in the
  /// caller's original order; the returned status is the first non-OK
  /// of those.  There is no cross-shard atomicity: a hard failure on
  /// one shard does not undo sibling sub-batches — the per-record
  /// statuses say exactly which members are durable.
  Status Write(const WriteBatch& batch,
               std::vector<Status>* per_record = nullptr);

  Status InsertBatch(std::span<const Record> recs);
  Status DeleteBatch(std::span<const PseudoKey> keys);

  /// \brief Partial-range query over all shards.  The result is in
  /// global ψ (z-)order: each shard's matches are sorted by ψ and the
  /// per-shard cursors k-way merged — since shards own contiguous ψ
  /// ranges the merge preserves order across shard boundaries.  Shards
  /// with no matches contribute nothing.  DataLoss from any degraded
  /// shard is reported after all shards were collected (the surviving
  /// matches are in `out`).
  Status Range(const RangePredicate& pred, std::vector<Record>* out);

  /// \brief Checkpoints every shard (each an independent atomic
  /// superblock flip).  All shards are attempted; the first failure is
  /// returned.
  Status Checkpoint();

  int shards() const { return static_cast<int>(units_.size()); }
  int shard_bits() const { return shard_bits_; }
  const KeySchema& schema() const { return schema_; }

  /// \brief The shard `key` routes to.
  int ShardOf(const PseudoKey& key) const {
    return ShardRouter::ShardOf(key, schema_, shard_bits_);
  }

  /// \brief Per-shard introspection (test assertions, tooling).
  BmehStore* shard(int i) { return units_[i]->store(); }
  const StorageUnit& unit(int i) const { return *units_[i]; }

  /// \brief Records across all shards (owner-synchronized, like the
  /// per-store accessors it sums).
  uint64_t records() const;
  /// \brief WAL records across all shards.
  uint64_t wal_records() const;
  /// \brief Mutations since the last checkpoint, across all shards.
  uint64_t dirty_ops() const;
  /// \brief True when any shard's open had to work around corruption.
  bool degraded() const;

  /// \brief Testing hook: poisons every shard so teardown performs no
  /// final checkpoint (the per-shard files keep their WALs).
  void SimulateCrashForTesting();

  /// \brief Testing hook: process death — poisons every shard and drops
  /// the file descriptors of file-backed shards without the clean-close
  /// header flush, so only completed page writes survive.
  void SimulateProcessCrashForTesting();

  /// \brief Testing hook: disables fsync on every file-backed shard.
  void DisableFsyncForTesting();

 private:
  ShardedStore(std::vector<std::unique_ptr<StorageUnit>> units,
               int shard_bits, const KeySchema& schema,
               obs::MetricsRegistry* metrics);

  /// Opens every unit concurrently (one thread per shard) and builds the
  /// facade; on any failure the already-opened units are poisoned before
  /// destruction so a failed open never mutates shard files.
  static Result<std::unique_ptr<ShardedStore>> OpenUnits(
      const std::string& dir, int shards, const ShardedStoreOptions& options);

  std::vector<std::unique_ptr<StorageUnit>> units_;
  int shard_bits_ = 0;
  KeySchema schema_;
  /// Aggregate sampled source (tree records / WAL depth summed across
  /// shards under the unlabeled names a single store would publish).
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
};

}  // namespace bmeh

#endif  // BMEH_STORE_SHARDED_STORE_H_
