// Online backup and point-in-time restore for BmehStore.
//
// A *backup set* is a directory holding a CRC-sealed manifest (BACKUPSET)
// plus payload files:
//
//   * full set:        checkpoint.pages  — the published checkpoint image,
//                                          page by page, each self-CRC'd
//                      wal-<lo>.seg      — the live WAL tail at capture
//                                          (absent when the WAL was empty)
//   * incremental set: wal-<lo>.seg ...  — every archived WAL segment past
//                                          the previous set's watermark,
//                                          plus the live tail; `prev` in
//                                          the manifest names the set it
//                                          extends
//
// The payload files are written and fsynced *before* the manifest, and the
// manifest is published with temp + rename + directory fsync — so a crash
// anywhere during a backup leaves either a complete sealed set or a
// directory with no valid BACKUPSET, which restore refuses.  Nothing in a
// set is ever modified after sealing.
//
// LSN semantics.  Every committed mutation carries a monotonic LSN
// (src/store/wal.h).  A set's `base_lsn` is the first LSN *not* folded
// into its checkpoint image; its `watermark` is the highest LSN it
// covers.  Restore replays archived records (image, then WAL segments in
// LSN order) up to a target LSN, verifying every page and record CRC and
// refusing gapped or torn archives — a verored restore reaches exactly
// the target, never silently less.
//
// The backup is *online*: BeginBackup captures a consistent snapshot
// under the store's operation lock in one brief critical section and pins
// the captured chains (checkpoints defer the frees); the image pages are
// then copied one shared-lock acquisition at a time while writers keep
// committing.

#ifndef BMEH_STORE_BACKUP_H_
#define BMEH_STORE_BACKUP_H_

#include <string>
#include <vector>

#include "src/store/bmeh_store.h"

namespace bmeh {

/// \brief Options for BackupStore::Run.
struct BackupOptions {
  /// Path of the previous backup set this one extends.  Empty (default)
  /// makes a full backup; non-empty makes an incremental one.
  std::string base_set;
  /// Where the store's checkpoint-time WAL archive lives (the store's
  /// StoreOptions::wal_archive_dir).  Incremental backups read the
  /// segments covering the span between the previous set's watermark and
  /// the live log from here; unused (and may stay empty) for full
  /// backups of stores that checkpointed nothing since the base.
  std::string wal_archive_dir;
  /// Optional: charges store_backups_total / backup_bytes_total.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief What a completed backup covered.
struct BackupRunInfo {
  bool incremental = false;
  /// First LSN not folded into the set's image (for an incremental set,
  /// inherited meaning: the lowest LSN its segments start at).
  uint64_t base_lsn = 1;
  /// Highest LSN the set covers; restoring this set with no target LSN
  /// reaches exactly this point.
  uint64_t watermark = 0;
  /// Payload bytes written (manifest excluded).
  uint64_t bytes = 0;
};

/// \brief One payload file listed in a sealed manifest.
struct BackupFileEntry {
  std::string name;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// \brief Parsed BACKUPSET manifest.
struct BackupSetInfo {
  bool incremental = false;
  int page_size = 0;
  /// Key shape of the backed-up store — recorded so a restore needs no
  /// out-of-band knowledge of the schema.
  KeySchema schema{2, 31};
  uint64_t generation = 0;
  PageId image_head = kInvalidPageId;
  uint64_t base_lsn = 1;
  uint64_t watermark = 0;
  /// Previous set ("" for a full set).  Resolved relative to the set's
  /// parent directory when not absolute.
  std::string prev;
  std::vector<BackupFileEntry> files;
};

/// \brief Online backup driver.
class BackupStore {
 public:
  /// Manifest file name inside a backup set directory.
  static constexpr char kManifestName[] = "BACKUPSET";
  /// Checkpoint image payload file name inside a full set.
  static constexpr char kPagesName[] = "checkpoint.pages";

  /// \brief Runs an online backup of `store` into `out_dir` (created if
  /// missing; must not already hold a sealed set).  Writers may keep
  /// committing throughout.  On failure the directory holds no valid
  /// manifest and restore will refuse it.
  static Result<BackupRunInfo> Run(BmehStore* store,
                                   const std::string& out_dir,
                                   const BackupOptions& options = {});

  /// \brief Reads and CRC-verifies the manifest of a sealed set (the
  /// payload files themselves are verified by restore).
  static Result<BackupSetInfo> ReadManifest(const std::string& set_dir);

  /// \brief Verifies every payload file of a set against the manifest
  /// (size + CRC) — the cheap "is this backup intact" health check.
  static Status Verify(const std::string& set_dir);
};

/// \brief Options for RestoreStore::Run.
struct RestoreOptions {
  /// Replay up to and including this LSN.  0 (default) restores to the
  /// set's watermark.  Must lie in [image base - 1, watermark]: the image
  /// cannot be partially unapplied, and the archive cannot replay past
  /// what it holds.
  uint64_t to_lsn = 0;
  /// Destination store parameters.  The schema and page size are taken
  /// from the backup manifest (whatever is set here is overridden); the
  /// rest — WAL sync policy, quota, metrics — applies to the rebuilt
  /// store as given.
  StoreOptions store;
  /// Optional: publishes the restore_replay_lsn gauge as replay advances.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief What a completed restore reached.
struct RestoreRunInfo {
  /// LSN the restored store's history ends at (== requested target).
  uint64_t replay_lsn = 0;
  /// Records replayed from archived WAL on top of the image.
  uint64_t records_replayed = 0;
};

/// \brief Point-in-time restore driver.
class RestoreStore {
 public:
  /// \brief Restores the set at `set_dir` (following `prev` links back to
  /// its full ancestor) into a new store file at `dest_path`, replaying
  /// archived WAL up to RestoreOptions::to_lsn.  Every page and record
  /// CRC is verified; torn, gapped, or tampered archives are refused with
  /// no file created.  The destination is built in a temp file and
  /// renamed into place, so a killed restore leaves no half-written
  /// store.  Fails if `dest_path` already exists.
  static Result<RestoreRunInfo> Run(const std::string& set_dir,
                                    const std::string& dest_path,
                                    const RestoreOptions& options = {});
};

}  // namespace bmeh

#endif  // BMEH_STORE_BACKUP_H_
