// Wal: the write-ahead log that makes BmehStore mutations durable between
// whole-tree checkpoints.
//
// The log is an append-only chain of PageStore pages living in the same
// file as the checkpoints.  Each page is:
//
//     [magic "BMWL" u32 | next page id u32 | records...]
//
// and each record is:
//
//     [body_len u16 | body | crc u32]
//     body = [op u8 | dims u8 | component u32 * dims | payload u64 (insert)]
//
// A body_len of 0 marks the end of a page's records (fresh pages are
// zeroed, so the marker is implicit).  The CRC covers the body and is
// seeded with the record's offset in the page, so stale bytes from a
// recycled page can never verify at a new position.  Every append rewrites
// the whole tail page — one page-sized write per mutation, the same cost
// discipline as the superblock flip.
//
// Batches.  AppendBatch() encodes many mutations as one record chain
// framed by a pair of marker records:
//
//     [kOpBatchBegin count] rec... [kOpBatchCommit count]
//     marker body = [op u8 | 0 u8 | count u32]
//
// packed so every touched page is written exactly once (the old tail is
// rewritten with appended records, full fresh pages follow in chain
// order).  Replay buffers the members of an open batch and only delivers
// them when the commit marker verifies; a batch cut by a crash — at any
// page-write boundary — is discarded whole and the log truncated back to
// the last committed record, so a batch is all-or-nothing on recovery.
//
// Durability is batched: Append()/AppendBatch() only issue page writes;
// the owner decides when to make them durable (MaybeSync() honours the
// configured sync_every, Sync() forces it).  A record is only
// *guaranteed* durable after the store sync that covers it; replay after
// a crash recovers a prefix of the appended records that always includes
// every record covered by a completed sync, and discards any torn tail
// via the CRC.

#ifndef BMEH_STORE_WAL_H_
#define BMEH_STORE_WAL_H_

#include <functional>
#include <span>
#include <vector>

#include "src/encoding/pseudo_key.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Append-only page-chain mutation log over a PageStore.
class Wal {
 public:
  static constexpr uint8_t kOpInsert = 1;
  static constexpr uint8_t kOpDelete = 2;
  /// Batch framing markers (never surfaced through Replay's callback).
  static constexpr uint8_t kOpBatchBegin = 3;
  static constexpr uint8_t kOpBatchCommit = 4;

  /// First four bytes of every WAL chain page ("BMWL") — public so the
  /// offline tooling (scrub/fsck) can recognize log pages in a sweep.
  static constexpr uint32_t kPageMagic = 0x424d574c;

  /// \brief One logged mutation.
  struct LogRecord {
    uint8_t op = 0;
    PseudoKey key;
    uint64_t payload = 0;  ///< Meaningful for kOpInsert only.
  };

  using ReplayFn = std::function<Status(const LogRecord&)>;

  /// \brief `store` must outlive the Wal.  `sync_every` batches fsyncs:
  /// MaybeSync() flushes after every `sync_every` appended records
  /// (0 = never sync on append; the owner syncs at checkpoints only).
  Wal(PageStore* store, uint64_t sync_every)
      : store_(store), sync_every_(sync_every) {}

  /// \brief First page of the chain (kInvalidPageId when the log is empty).
  PageId head() const { return head_; }
  bool empty() const { return head_ == kInvalidPageId; }

  /// \brief Valid records currently in the log (appended + replayed).
  uint64_t record_count() const { return record_count_; }

  /// \brief Pages currently owned by the log, in chain order.
  const std::vector<PageId>& pages() const { return pages_; }

  /// \brief Appends one record (page writes only; see MaybeSync).
  /// Records too large to fit an empty page are rejected with Invalid
  /// before any allocation or write.
  ///
  /// Atomic under failure: when a page cannot be allocated (quota /
  /// ENOSPC — the page is pre-reserved, so this is detected up front) or
  /// a write fails cleanly, every effect is rolled back and the log —
  /// in memory and on disk — is exactly as before the call; the same
  /// append can be retried once the condition clears.  Only when the
  /// rollback itself fails does the error escalate to a non-transient
  /// IoError (the owner should stop mutating).
  Status Append(const LogRecord& rec);

  /// \brief Appends `recs` as one all-or-nothing batch: the records are
  /// framed by begin/commit markers and packed so every touched page is
  /// written exactly once — the amortized-I/O path group commit rides on.
  /// After a crash anywhere inside the append, Replay discards the whole
  /// batch; once the commit marker is on disk (and synced), the whole
  /// batch survives.  A size-1 batch degenerates to Append(); an empty
  /// batch is a no-op.
  ///
  /// Atomic under failure with the same contract as Append(): the pages
  /// the batch needs are reserved up front (one ResourceExhausted before
  /// anything is touched), and a mid-flight write failure rolls every
  /// in-memory and on-disk effect back so the batch can be retried.
  Status AppendBatch(std::span<const LogRecord> recs);

  /// \brief Pages a batch of `recs` would have to allocate if appended
  /// now — what AppendBatch() reserves up front.  Exposed for tests and
  /// capacity planning.
  uint64_t PagesNeededFor(std::span<const LogRecord> recs) const;

  /// \brief Syncs the store if `sync_every` unsynced records accumulated.
  Status MaybeSync();

  /// \brief Forces a store sync and resets the batch counter.
  Status Sync();

  /// \brief Tells the log its pages were made durable by an external sync
  /// (e.g. a superblock publish), resetting the batch counter.
  void NoteSynced() { unsynced_ = 0; }

  /// \brief Walks the chain at `head`, invoking `fn` for every valid
  /// record in append order, and positions the append cursor after the
  /// last valid record.  Replay stops — without error — at the first sign
  /// of a torn tail: an unreadable page, a bad page magic, a bad CRC, or a
  /// malformed body.  Batch members are buffered and delivered only when
  /// their commit marker verifies; a batch left open at the cut (the
  /// crash-inside-AppendBatch signature) is discarded whole and the
  /// cursor rewound to the last committed record.  `fn` errors are propagated.  When `sanitize_tail`
  /// is true (the normal recovery path), the tail page is rewritten with
  /// any truncated garbage zeroed out so that stale bytes and dangling
  /// chain links cannot resurface on later appends; pass false for
  /// read-only inspection.
  Status Replay(PageId head, const ReplayFn& fn, bool sanitize_tail = true);

  /// \brief Whether the last Replay() stopped before the chain's natural
  /// end (torn tail, bad magic/CRC, unreadable page).  Expected after a
  /// crash; only noteworthy together with replay_hit_data_loss().
  bool replay_truncated() const { return replay_truncated_; }

  /// \brief Whether the last Replay() was cut short by a page the store
  /// reported as verified-corrupt (Status::DataLoss) rather than a torn
  /// tail.  Torn tails are a benign crash artifact; DataLoss means
  /// acknowledged records may have been destroyed by bit rot, and the
  /// owner should surface degradation instead of staying silent.
  bool replay_hit_data_loss() const { return replay_hit_data_loss_; }

  /// \brief Frees every page of the log and resets it to empty.  Called
  /// after a checkpoint made the logged mutations redundant.
  Status Truncate();

 private:
  /// Serialized size of `rec` including length prefix and CRC.
  static size_t WireSize(const LogRecord& rec);
  /// Serialized size of a batch begin/commit marker record.
  static size_t MarkerWireSize();
  /// Writes `rec` into `buf` at `off` (which seeds the CRC).
  static void Encode(const LogRecord& rec, uint8_t* buf, size_t off);
  /// Writes a batch marker (`op` is kOpBatchBegin/kOpBatchCommit) into
  /// `buf` at `off`.
  static void EncodeMarker(uint8_t op, uint32_t count, uint8_t* buf,
                           size_t off);
  /// Starts a fresh tail page image in tail_buf_.
  void InitTailBuffer(PageId id);

  PageStore* store_;
  uint64_t sync_every_;
  PageId head_ = kInvalidPageId;
  PageId tail_ = kInvalidPageId;
  std::vector<uint8_t> tail_buf_;
  size_t tail_used_ = 0;
  uint64_t record_count_ = 0;
  uint64_t unsynced_ = 0;
  bool replay_truncated_ = false;
  bool replay_hit_data_loss_ = false;
  std::vector<PageId> pages_;
};

}  // namespace bmeh

#endif  // BMEH_STORE_WAL_H_
