// Wal: the write-ahead log that makes BmehStore mutations durable between
// whole-tree checkpoints.
//
// The log is an append-only chain of PageStore pages living in the same
// file as the checkpoints.  Each page is:
//
//     [magic "BMWL" u32 | next page id u32 | records...]
//
// and each record is:
//
//     [body_len u16 | body | crc u32]
//     body = [op u8 | dims u8 | component u32 * dims | payload u64 (insert)]
//
// A body_len of 0 marks the end of a page's records (fresh pages are
// zeroed, so the marker is implicit).  The CRC covers the body and is
// seeded with the record's offset in the page, so stale bytes from a
// recycled page can never verify at a new position.  Every append rewrites
// the whole tail page — one page-sized write per mutation, the same cost
// discipline as the superblock flip.
//
// Batches.  AppendBatch() encodes many mutations as one record chain
// framed by a pair of marker records:
//
//     [kOpBatchBegin count] rec... [kOpBatchCommit count]
//     marker body = [op u8 | 0 u8 | count u32]
//
// packed so every touched page is written exactly once (the old tail is
// rewritten with appended records, full fresh pages follow in chain
// order).  Replay buffers the members of an open batch and only delivers
// them when the commit marker verifies; a batch cut by a crash — at any
// page-write boundary — is discarded whole and the log truncated back to
// the last committed record, so a batch is all-or-nothing on recovery.
//
// Durability is batched: Append()/AppendBatch() only issue page writes;
// the owner decides when to make them durable (MaybeSync() honours the
// configured sync_every, Sync() forces it).  A record is only
// *guaranteed* durable after the store sync that covers it; replay after
// a crash recovers a prefix of the appended records that always includes
// every record covered by a completed sync, and discards any torn tail
// via the CRC.

#ifndef BMEH_STORE_WAL_H_
#define BMEH_STORE_WAL_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/encoding/pseudo_key.h"
#include "src/pagestore/page_store.h"

namespace bmeh {

/// \brief Append-only page-chain mutation log over a PageStore.
class Wal {
 public:
  static constexpr uint8_t kOpInsert = 1;
  static constexpr uint8_t kOpDelete = 2;
  /// Batch framing markers (never surfaced through Replay's callback).
  static constexpr uint8_t kOpBatchBegin = 3;
  static constexpr uint8_t kOpBatchCommit = 4;

  /// First four bytes of every WAL chain page ("BMWL") — public so the
  /// offline tooling (scrub/fsck) can recognize log pages in a sweep.
  static constexpr uint32_t kPageMagic = 0x424d574c;

  /// \brief One logged mutation.
  struct LogRecord {
    uint8_t op = 0;
    PseudoKey key;
    uint64_t payload = 0;  ///< Meaningful for kOpInsert only.
    /// Log sequence number.  Not serialized: a record's LSN is its
    /// ordinal position in the log (base_lsn() + index), so it is
    /// implicit on disk and filled in when Replay() delivers the record.
    /// Zero means "not assigned" (records being built for Append).
    uint64_t lsn = 0;
  };

  using ReplayFn = std::function<Status(const LogRecord&)>;

  /// \brief `store` must outlive the Wal.  `sync_every` batches fsyncs:
  /// MaybeSync() flushes after every `sync_every` appended records
  /// (0 = never sync on append; the owner syncs at checkpoints only).
  Wal(PageStore* store, uint64_t sync_every)
      : store_(store), sync_every_(sync_every) {}

  /// \brief First page of the chain (kInvalidPageId when the log is empty).
  PageId head() const { return head_; }
  bool empty() const { return head_ == kInvalidPageId; }

  /// \brief Valid records currently in the log (appended + replayed).
  uint64_t record_count() const { return record_count_; }

  /// \brief LSN of the first record in the current log incarnation.  LSNs
  /// are monotonic across checkpoints: Truncate() advances the base by the
  /// records it discards, and the owner persists the base in the
  /// superblock so identity survives reopen.  A fresh log starts at 1.
  uint64_t base_lsn() const { return base_lsn_; }

  /// \brief Restores the base LSN recorded by the owner (called before
  /// Replay() when opening an existing store).
  void SetBaseLsn(uint64_t base) { base_lsn_ = base; }

  /// \brief LSN the next appended record will receive.
  uint64_t next_lsn() const { return base_lsn_ + record_count_; }

  /// \brief Pages currently owned by the log, in chain order.
  const std::vector<PageId>& pages() const { return pages_; }

  /// \brief Appends one record (page writes only; see MaybeSync).
  /// Records too large to fit an empty page are rejected with Invalid
  /// before any allocation or write.
  ///
  /// Atomic under failure: when a page cannot be allocated (quota /
  /// ENOSPC — the page is pre-reserved, so this is detected up front) or
  /// a write fails cleanly, every effect is rolled back and the log —
  /// in memory and on disk — is exactly as before the call; the same
  /// append can be retried once the condition clears.  Only when the
  /// rollback itself fails does the error escalate to a non-transient
  /// IoError (the owner should stop mutating).
  Status Append(const LogRecord& rec);

  /// \brief Appends `recs` as one all-or-nothing batch: the records are
  /// framed by begin/commit markers and packed so every touched page is
  /// written exactly once — the amortized-I/O path group commit rides on.
  /// After a crash anywhere inside the append, Replay discards the whole
  /// batch; once the commit marker is on disk (and synced), the whole
  /// batch survives.  A size-1 batch degenerates to Append(); an empty
  /// batch is a no-op.
  ///
  /// Atomic under failure with the same contract as Append(): the pages
  /// the batch needs are reserved up front (one ResourceExhausted before
  /// anything is touched), and a mid-flight write failure rolls every
  /// in-memory and on-disk effect back so the batch can be retried.
  Status AppendBatch(std::span<const LogRecord> recs);

  /// \brief Pages a batch of `recs` would have to allocate if appended
  /// now — what AppendBatch() reserves up front.  Exposed for tests and
  /// capacity planning.
  uint64_t PagesNeededFor(std::span<const LogRecord> recs) const;

  /// \brief Syncs the store if `sync_every` unsynced records accumulated.
  Status MaybeSync();

  /// \brief Forces a store sync and resets the batch counter.
  Status Sync();

  /// \brief Tells the log its pages were made durable by an external sync
  /// (e.g. a superblock publish), resetting the batch counter.
  void NoteSynced() { unsynced_ = 0; }

  /// \brief Walks the chain at `head`, invoking `fn` for every valid
  /// record in append order, and positions the append cursor after the
  /// last valid record.  Replay stops — without error — at the first sign
  /// of a torn tail: an unreadable page, a bad page magic, a bad CRC, or a
  /// malformed body.  Batch members are buffered and delivered only when
  /// their commit marker verifies; a batch left open at the cut (the
  /// crash-inside-AppendBatch signature) is discarded whole and the
  /// cursor rewound to the last committed record.  `fn` errors are propagated.  When `sanitize_tail`
  /// is true (the normal recovery path), the tail page is rewritten with
  /// any truncated garbage zeroed out so that stale bytes and dangling
  /// chain links cannot resurface on later appends; pass false for
  /// read-only inspection.
  Status Replay(PageId head, const ReplayFn& fn, bool sanitize_tail = true);

  /// \brief Whether the last Replay() stopped before the chain's natural
  /// end (torn tail, bad magic/CRC, unreadable page).  Expected after a
  /// crash; only noteworthy together with replay_hit_data_loss().
  bool replay_truncated() const { return replay_truncated_; }

  /// \brief Whether the last Replay() was cut short by a page the store
  /// reported as verified-corrupt (Status::DataLoss) rather than a torn
  /// tail.  Torn tails are a benign crash artifact; DataLoss means
  /// acknowledged records may have been destroyed by bit rot, and the
  /// owner should surface degradation instead of staying silent.
  bool replay_hit_data_loss() const { return replay_hit_data_loss_; }

  /// \brief Frees every page of the log and resets it to empty, advancing
  /// base_lsn() past the discarded records so LSNs stay monotonic.  Called
  /// after a checkpoint made the logged mutations redundant.
  Status Truncate();

  /// \brief Like Truncate(), but transfers page ownership to the caller
  /// instead of freeing — used while an online backup pins the chain so
  /// the pages cannot be recycled under a concurrent copy.
  std::vector<PageId> TruncateDeferred();

  // ---- Archive segments -------------------------------------------------
  //
  // A WAL archive segment is a standalone file holding a contiguous run
  // of log records, written when a checkpoint is about to truncate them
  // (or by an online backup copying the live tail).  Layout:
  //
  //     [magic "BMWA" u32 | version u32 | lo_lsn u64 | count u64]
  //     count records, each in the page wire format
  //     [body_len u16 | body | crc u32]  (CRC seeded by file offset)
  //
  // LSNs are implicit: record i carries lo_lsn + i.  The reader verifies
  // every CRC and the declared count, so a torn or tampered segment is
  // refused rather than partially applied.

  /// First four bytes of an archive segment file ("BMWA").
  static constexpr uint32_t kArchiveMagic = 0x424d5741;

  /// \brief Serializes `recs` (whose first record carries LSN `lo_lsn`)
  /// into an archive segment image.
  static std::vector<uint8_t> EncodeArchiveSegment(
      std::span<const LogRecord> recs, uint64_t lo_lsn);

  /// \brief Parses and fully verifies a segment image, appending the
  /// records — with LSNs assigned — to `out` and reporting the segment's
  /// LSN range.  Any malformed byte refuses the whole segment.
  static Status DecodeArchiveSegment(std::span<const uint8_t> bytes,
                                     std::vector<LogRecord>* out,
                                     uint64_t* lo_lsn, uint64_t* count);

  /// \brief Name of the segment file holding LSNs starting at `lo_lsn`
  /// ("wal-<16 hex digits>.seg" — zero-padded, so lexicographic order is
  /// LSN order).
  static std::string SegmentFileName(uint64_t lo_lsn);

  /// \brief Atomically writes `recs` (first record = LSN `lo_lsn`) as a
  /// sealed segment file in `dir`: temp file, fsync, rename, directory
  /// fsync — a crash leaves either the complete sealed segment or no
  /// segment, never a torn one.  Reports the final name via `filename`
  /// when non-null.
  static Status WriteSegmentFile(const std::string& dir,
                                 std::span<const LogRecord> recs,
                                 uint64_t lo_lsn,
                                 std::string* filename = nullptr);

  /// \brief Reads and fully verifies a segment file written by
  /// WriteSegmentFile, appending its records (LSNs assigned) to `out`.
  static Status ReadSegmentFile(const std::string& path,
                                std::vector<LogRecord>* out,
                                uint64_t* lo_lsn, uint64_t* count);

 private:
  /// Serialized size of `rec` including length prefix and CRC.
  static size_t WireSize(const LogRecord& rec);
  /// Serialized size of a batch begin/commit marker record.
  static size_t MarkerWireSize();
  /// Writes `rec` into `buf` at `off` (which seeds the CRC).
  static void Encode(const LogRecord& rec, uint8_t* buf, size_t off);
  /// Writes a batch marker (`op` is kOpBatchBegin/kOpBatchCommit) into
  /// `buf` at `off`.
  static void EncodeMarker(uint8_t op, uint32_t count, uint8_t* buf,
                           size_t off);
  /// Starts a fresh tail page image in tail_buf_.
  void InitTailBuffer(PageId id);

  PageStore* store_;
  uint64_t sync_every_;
  PageId head_ = kInvalidPageId;
  PageId tail_ = kInvalidPageId;
  std::vector<uint8_t> tail_buf_;
  size_t tail_used_ = 0;
  uint64_t record_count_ = 0;
  uint64_t base_lsn_ = 1;
  uint64_t unsynced_ = 0;
  bool replay_truncated_ = false;
  bool replay_hit_data_loss_ = false;
  std::vector<PageId> pages_;
};

}  // namespace bmeh

#endif  // BMEH_STORE_WAL_H_
