#include "src/store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "src/common/crc32.h"
#include "src/pagestore/undo_journal.h"

namespace bmeh {

namespace {

constexpr uint32_t kWalMagic = Wal::kPageMagic;  // "BMWL"
constexpr size_t kPageHeaderSize = 8;            // magic + next
constexpr size_t kLenSize = 2;
constexpr size_t kCrcSize = 4;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

size_t BodySize(uint8_t op, int dims) {
  return 2 + 4 * static_cast<size_t>(dims) +
         (op == Wal::kOpInsert ? 8 : 0);
}

// Marker body: [op u8 | 0 u8 | count u32].
constexpr size_t kMarkerBodySize = 6;

bool IsMutationOp(uint8_t op) {
  return op == Wal::kOpInsert || op == Wal::kOpDelete;
}

// Archive segment header: magic + version + lo_lsn + count.
constexpr uint32_t kArchiveVersion = 1;
constexpr size_t kArchiveHeaderSize = 24;

/// Parses a mutation record body (already CRC-verified) into `rec`.
/// Returns false on any structural mismatch.
bool ParseMutationBody(const uint8_t* body, uint16_t len,
                       Wal::LogRecord* rec) {
  const uint8_t op = body[0];
  const int dims = body[1];
  if (!IsMutationOp(op) || dims < 1 || dims > kMaxDims ||
      len != BodySize(op, dims)) {
    return false;
  }
  rec->op = op;
  std::array<uint32_t, kMaxDims> comps{};
  for (int j = 0; j < dims; ++j) {
    comps[j] = GetU32(body + 2 + 4 * j);
  }
  rec->key = PseudoKey(std::span<const uint32_t>(comps.data(), dims));
  if (op == Wal::kOpInsert) {
    std::memcpy(&rec->payload, body + 2 + 4 * dims, 8);
  }
  return true;
}

}  // namespace

size_t Wal::WireSize(const LogRecord& rec) {
  return kLenSize + BodySize(rec.op, rec.key.dims()) + kCrcSize;
}

size_t Wal::MarkerWireSize() {
  return kLenSize + kMarkerBodySize + kCrcSize;
}

void Wal::EncodeMarker(uint8_t op, uint32_t count, uint8_t* buf,
                       size_t off) {
  const uint16_t len = static_cast<uint16_t>(kMarkerBodySize);
  std::memcpy(buf + off, &len, 2);
  uint8_t* body = buf + off + kLenSize;
  body[0] = op;
  body[1] = 0;
  PutU32(body + 2, count);
  const uint32_t crc = Crc32(body, len, static_cast<uint32_t>(off));
  PutU32(body + len, crc);
}

void Wal::Encode(const LogRecord& rec, uint8_t* buf, size_t off) {
  const uint16_t len =
      static_cast<uint16_t>(BodySize(rec.op, rec.key.dims()));
  std::memcpy(buf + off, &len, 2);
  uint8_t* body = buf + off + kLenSize;
  body[0] = rec.op;
  body[1] = static_cast<uint8_t>(rec.key.dims());
  for (int j = 0; j < rec.key.dims(); ++j) {
    PutU32(body + 2 + 4 * j, rec.key.component(j));
  }
  if (rec.op == kOpInsert) {
    std::memcpy(body + 2 + 4 * rec.key.dims(), &rec.payload, 8);
  }
  const uint32_t crc = Crc32(body, len, static_cast<uint32_t>(off));
  PutU32(body + len, crc);
}

void Wal::InitTailBuffer(PageId id) {
  tail_buf_.assign(store_->page_size(), 0);
  PutU32(tail_buf_.data(), kWalMagic);
  PutU32(tail_buf_.data() + 4, kInvalidPageId);
  tail_ = id;
  tail_used_ = kPageHeaderSize;
}

Status Wal::Append(const LogRecord& rec) {
  if (rec.op != kOpInsert && rec.op != kOpDelete) {
    return Status::Invalid("bad WAL op " + std::to_string(rec.op));
  }
  const size_t need = WireSize(rec);
  const size_t page_size = static_cast<size_t>(store_->page_size());
  if (need > page_size - kPageHeaderSize) {
    // Would not fit even an empty page — sealing the tail cannot help,
    // and Encode would overrun tail_buf_.
    return Status::Invalid("WAL record of " + std::to_string(need) +
                           " bytes exceeds page capacity of " +
                           std::to_string(page_size - kPageHeaderSize));
  }
  // Snapshot the append cursor: the mutation below is atomic — it either
  // completes, or every in-memory and on-disk effect is restored so the
  // caller can retry the same append once the failure (typically page
  // exhaustion) clears.
  const PageId old_head = head_;
  const PageId old_tail = tail_;
  const size_t old_tail_used = tail_used_;
  const size_t old_page_count = pages_.size();
  const std::vector<uint8_t> old_tail_buf = tail_buf_;

  PageOpJournal journal(store_);
  if (empty()) {
    // Reserve before allocating so a full device refuses the append here,
    // with nothing to undo.
    BMEH_RETURN_NOT_OK(journal.Reserve(1));
    BMEH_ASSIGN_OR_RETURN(const PageId id, journal.Allocate());
    head_ = id;
    InitTailBuffer(id);
    pages_.push_back(id);
  } else if (tail_used_ + need > page_size) {
    // Seal the tail: link it to a fresh page and write it out one last
    // time, then continue in the new page.  The pre-seal image is
    // journaled so a later failure can unseal the page on disk.
    BMEH_RETURN_NOT_OK(journal.Reserve(1));
    auto alloc = journal.Allocate();
    if (!alloc.ok()) return alloc.status();
    const PageId id = alloc.ValueOrDie();
    PutU32(tail_buf_.data() + 4, id);
    Status seal = journal.GuardedWrite(tail_, tail_buf_, old_tail_buf);
    if (!seal.ok()) {
      PutU32(tail_buf_.data() + 4, kInvalidPageId);
      return seal;  // the journal frees the fresh page
    }
    InitTailBuffer(id);
    pages_.push_back(id);
  }
  Encode(rec, tail_buf_.data(), tail_used_);
  Status wst = store_->Write(tail_, tail_buf_);
  if (!wst.ok()) {
    // Unwind: unseal the old tail / free the fresh page on disk, then
    // restore the in-memory cursor.
    Status rb = journal.RollbackNow();
    head_ = old_head;
    tail_ = old_tail;
    tail_used_ = old_tail_used;
    tail_buf_ = old_tail_buf;
    pages_.resize(old_page_count);
    // A failed rollback left disk and memory diverged — report that
    // (non-transient) instead of the original error so the owner poisons.
    return rb.ok() ? wst : rb;
  }
  tail_used_ += need;
  journal.Commit();
  ++record_count_;
  ++unsynced_;
  return Status::OK();
}

uint64_t Wal::PagesNeededFor(std::span<const LogRecord> recs) const {
  const size_t page_size = static_cast<size_t>(store_->page_size());
  uint64_t fresh = 0;
  size_t cursor = tail_used_;
  bool have_page = !empty();
  auto place = [&](size_t need) {
    if (!have_page || cursor + need > page_size) {
      ++fresh;
      have_page = true;
      cursor = kPageHeaderSize;
    }
    cursor += need;
  };
  if (recs.size() > 1) place(MarkerWireSize());
  for (const LogRecord& rec : recs) place(WireSize(rec));
  if (recs.size() > 1) place(MarkerWireSize());
  return fresh;
}

Status Wal::AppendBatch(std::span<const LogRecord> recs) {
  if (recs.empty()) return Status::OK();
  if (recs.size() == 1) return Append(recs[0]);
  const size_t page_size = static_cast<size_t>(store_->page_size());
  for (const LogRecord& rec : recs) {
    if (!IsMutationOp(rec.op)) {
      return Status::Invalid("bad WAL op " + std::to_string(rec.op));
    }
    if (WireSize(rec) > page_size - kPageHeaderSize) {
      return Status::Invalid("WAL record of " +
                             std::to_string(WireSize(rec)) +
                             " bytes exceeds page capacity of " +
                             std::to_string(page_size - kPageHeaderSize));
    }
  }

  // Snapshot the cursor so a mid-flight failure can restore it; the
  // on-disk effects are unwound by the journal.
  const PageId old_head = head_;
  const PageId old_tail = tail_;
  const size_t old_tail_used = tail_used_;
  const size_t old_page_count = pages_.size();
  const std::vector<uint8_t> old_tail_buf = tail_buf_;

  PageOpJournal journal(store_);
  // Reserve every fresh page up front so a full device refuses the whole
  // batch here, before anything is touched.
  const uint64_t fresh_pages = PagesNeededFor(recs);
  if (fresh_pages > 0) {
    BMEH_RETURN_NOT_OK(journal.Reserve(fresh_pages));
  }

  auto restore = [&] {
    head_ = old_head;
    tail_ = old_tail;
    tail_used_ = old_tail_used;
    tail_buf_ = old_tail_buf;
    pages_.resize(old_page_count);
  };

  // Pack the framed record stream into page images, writing nothing yet.
  // The first staged page is the sealed old tail (if any) — its on-disk
  // bytes hold committed records, so it gets the guarded write; fresh
  // pages roll back by being freed.
  struct StagedPage {
    PageId id;
    std::vector<uint8_t> bytes;
  };
  std::vector<StagedPage> staged;
  auto make_room = [&](size_t need) -> Status {
    if (empty()) {
      BMEH_ASSIGN_OR_RETURN(const PageId id, journal.Allocate());
      head_ = id;
      InitTailBuffer(id);
      pages_.push_back(id);
    } else if (tail_used_ + need > page_size) {
      BMEH_ASSIGN_OR_RETURN(const PageId id, journal.Allocate());
      PutU32(tail_buf_.data() + 4, id);
      staged.push_back({tail_, tail_buf_});
      InitTailBuffer(id);
      pages_.push_back(id);
    }
    return Status::OK();
  };
  auto emit = [&](auto&& encode, size_t need) -> Status {
    BMEH_RETURN_NOT_OK(make_room(need));
    encode(tail_buf_.data(), tail_used_);
    tail_used_ += need;
    return Status::OK();
  };

  const uint32_t count = static_cast<uint32_t>(recs.size());
  Status st = emit(
      [&](uint8_t* buf, size_t off) {
        EncodeMarker(kOpBatchBegin, count, buf, off);
      },
      MarkerWireSize());
  for (size_t i = 0; st.ok() && i < recs.size(); ++i) {
    st = emit(
        [&](uint8_t* buf, size_t off) { Encode(recs[i], buf, off); },
        WireSize(recs[i]));
  }
  if (st.ok()) {
    st = emit(
        [&](uint8_t* buf, size_t off) {
          EncodeMarker(kOpBatchCommit, count, buf, off);
        },
        MarkerWireSize());
  }
  if (st.ok()) {
    staged.push_back({tail_, tail_buf_});
    // Write every touched page exactly once, old tail first (the same
    // seal-then-extend discipline as Append): a crash between writes
    // leaves either a chain without the commit marker — discarded whole
    // by Replay — or links into not-yet-written pages, which cannot
    // verify as WAL pages.
    for (size_t i = 0; st.ok() && i < staged.size(); ++i) {
      if (staged[i].id == old_tail) {
        st = journal.GuardedWrite(staged[i].id, staged[i].bytes,
                                  old_tail_buf);
      } else {
        st = store_->Write(staged[i].id, staged[i].bytes);
      }
    }
  }
  if (!st.ok()) {
    Status rb = journal.RollbackNow();
    restore();
    // A failed rollback left disk and memory diverged — report that
    // (non-transient) instead of the original error so the owner poisons.
    return rb.ok() ? st : rb;
  }
  journal.Commit();
  record_count_ += recs.size();
  unsynced_ += recs.size();
  return Status::OK();
}

Status Wal::MaybeSync() {
  if (sync_every_ > 0 && unsynced_ >= sync_every_) {
    return Sync();
  }
  return Status::OK();
}

Status Wal::Sync() {
  BMEH_RETURN_NOT_OK(store_->Sync());
  unsynced_ = 0;
  return Status::OK();
}

Status Wal::Replay(PageId head, const ReplayFn& fn, bool sanitize_tail) {
  head_ = kInvalidPageId;
  tail_ = kInvalidPageId;
  tail_buf_.clear();
  tail_used_ = 0;
  record_count_ = 0;
  unsynced_ = 0;
  replay_truncated_ = false;
  replay_hit_data_loss_ = false;
  pages_.clear();
  if (head == kInvalidPageId) {
    return Status::OK();
  }

  const size_t page_size = static_cast<size_t>(store_->page_size());
  std::vector<uint8_t> buf(page_size);
  std::unordered_set<PageId> visited;
  std::vector<PageId> chain;  // pages visited, in chain order
  // An open batch: members are buffered and only delivered (and the
  // cursor advanced) when the commit marker verifies, so a batch cut by
  // a crash vanishes whole.
  bool batch_active = false;
  uint32_t batch_expected = 0;
  std::vector<LogRecord> batch_members;
  PageId id = head;
  bool truncated = false;
  // Adopts the position right after the record that ends at `off` on the
  // current page as the new append cursor.  Pages before an adoption
  // point only ever hold delivered records, so the whole visited chain
  // becomes the log's page list.
  auto adopt = [&](size_t off) {
    if (head_ == kInvalidPageId) head_ = head;
    tail_ = id;
    tail_buf_ = buf;
    tail_used_ = off;
    pages_ = chain;
  };
  // Everything below treats any inconsistency as "the log ends here":
  // after a crash the tail may be unwritten (zeros), half-written (CRC
  // mismatch), or dangling (unreadable page) — all are expected states,
  // and the valid prefix before them is exactly what was acknowledged.
  while (id != kInvalidPageId) {
    if (!visited.insert(id).second) {
      truncated = true;  // cycle: stale link into an older incarnation
      break;
    }
    const Status read_st = store_->Read(id, buf);
    if (!read_st.ok() || GetU32(buf.data()) != kWalMagic) {
      truncated = true;
      if (read_st.IsDataLoss()) replay_hit_data_loss_ = true;
      break;
    }
    chain.push_back(id);
    const PageId next = GetU32(buf.data() + 4);
    size_t off = kPageHeaderSize;
    bool page_ok = true;
    while (off + kLenSize <= page_size) {
      const uint16_t len = GetU16(buf.data() + off);
      if (len == 0) break;  // end of this page's records
      if (off + kLenSize + len + kCrcSize > page_size) {
        page_ok = false;
        break;
      }
      const uint8_t* body = buf.data() + off + kLenSize;
      const uint32_t crc = GetU32(body + len);
      if (Crc32(body, len, static_cast<uint32_t>(off)) != crc) {
        page_ok = false;
        break;
      }
      const uint8_t op = body[0];
      const int dims = body[1];
      if (op == kOpBatchBegin || op == kOpBatchCommit) {
        if (dims != 0 || len != kMarkerBodySize) {
          page_ok = false;
          break;
        }
        const uint32_t count = GetU32(body + 2);
        if (op == kOpBatchBegin) {
          // A begin inside an open batch is structural nonsense — cut at
          // the last committed record.
          if (batch_active) {
            page_ok = false;
            break;
          }
          batch_active = true;
          batch_expected = count;
          batch_members.clear();
        } else {
          if (!batch_active || count != batch_expected ||
              batch_members.size() != batch_expected) {
            page_ok = false;
            break;
          }
          for (LogRecord& member : batch_members) {
            member.lsn = base_lsn_ + record_count_;
            BMEH_RETURN_NOT_OK(fn(member));
            ++record_count_;
          }
          batch_active = false;
          adopt(off + kLenSize + len + kCrcSize);
        }
        off += kLenSize + len + kCrcSize;
        continue;
      }
      LogRecord rec;
      if (!ParseMutationBody(body, len, &rec)) {
        page_ok = false;
        break;
      }
      off += kLenSize + len + kCrcSize;
      if (batch_active) {
        if (batch_members.size() >= batch_expected) {
          // More members than the frame declared: cut.
          page_ok = false;
          break;
        }
        batch_members.push_back(rec);
        continue;
      }
      rec.lsn = base_lsn_ + record_count_;
      BMEH_RETURN_NOT_OK(fn(rec));
      ++record_count_;
      adopt(off);
    }
    if (!page_ok) {
      truncated = true;
      break;
    }
    id = next;
  }
  if (batch_active) {
    // The chain ended with an uncommitted batch — the on-disk signature
    // of a crash inside AppendBatch.  The buffered members are dropped
    // and the cursor stays at the last committed record; mark the log
    // truncated so the tail past the cursor is sanitized below.
    truncated = true;
  }
  replay_truncated_ = truncated;

  if (tail_ == kInvalidPageId) {
    // Nothing valid anywhere in the chain: the log is effectively empty
    // and the head pages (if any) are garbage for the caller to reclaim.
    return Status::OK();
  }
  head_ = head;
  if (pages_.empty() || pages_.front() != head) {
    // The head itself held a record, so this cannot happen; defensive.
    return Status::Corruption("WAL replay lost its head page");
  }
  // Zero out everything past the last valid record (including any stale
  // next-link) so future appends cannot resurrect discarded bytes.  Never
  // write that back when the cut was a verified-corrupt page: truncating
  // the chain on disk would erase the very evidence that distinguishes
  // "benign torn tail" from "acknowledged records destroyed", and the next
  // open (or a salvage run) would then miss the loss entirely.
  const PageId stale_next = GetU32(tail_buf_.data() + 4);
  std::fill(tail_buf_.begin() + tail_used_, tail_buf_.end(), 0);
  PutU32(tail_buf_.data() + 4, kInvalidPageId);
  if (sanitize_tail && !replay_hit_data_loss_ &&
      (truncated || stale_next != kInvalidPageId)) {
    BMEH_RETURN_NOT_OK(store_->Write(tail_, tail_buf_));
  }
  return Status::OK();
}

Status Wal::Truncate() {
  for (PageId id : pages_) {
    BMEH_RETURN_NOT_OK(store_->Free(id));
  }
  pages_.clear();
  head_ = kInvalidPageId;
  tail_ = kInvalidPageId;
  tail_buf_.clear();
  tail_used_ = 0;
  // The discarded records keep their identity: the next append continues
  // the LSN sequence where the truncated log left off.
  base_lsn_ += record_count_;
  record_count_ = 0;
  unsynced_ = 0;
  return Status::OK();
}

std::vector<PageId> Wal::TruncateDeferred() {
  std::vector<PageId> owned = std::move(pages_);
  pages_.clear();
  head_ = kInvalidPageId;
  tail_ = kInvalidPageId;
  tail_buf_.clear();
  tail_used_ = 0;
  base_lsn_ += record_count_;
  record_count_ = 0;
  unsynced_ = 0;
  return owned;
}

std::vector<uint8_t> Wal::EncodeArchiveSegment(
    std::span<const LogRecord> recs, uint64_t lo_lsn) {
  size_t total = kArchiveHeaderSize;
  for (const LogRecord& rec : recs) total += WireSize(rec);
  std::vector<uint8_t> out(total, 0);
  PutU32(out.data(), kArchiveMagic);
  PutU32(out.data() + 4, kArchiveVersion);
  std::memcpy(out.data() + 8, &lo_lsn, 8);
  const uint64_t count = recs.size();
  std::memcpy(out.data() + 16, &count, 8);
  size_t off = kArchiveHeaderSize;
  for (const LogRecord& rec : recs) {
    Encode(rec, out.data(), off);
    off += WireSize(rec);
  }
  return out;
}

Status Wal::DecodeArchiveSegment(std::span<const uint8_t> bytes,
                                 std::vector<LogRecord>* out,
                                 uint64_t* lo_lsn, uint64_t* count) {
  if (bytes.size() < kArchiveHeaderSize) {
    return Status::Corruption("archive segment shorter than its header");
  }
  if (GetU32(bytes.data()) != kArchiveMagic) {
    return Status::Corruption("bad archive segment magic");
  }
  const uint32_t version = GetU32(bytes.data() + 4);
  if (version != kArchiveVersion) {
    return Status::Corruption("unsupported archive segment version " +
                              std::to_string(version));
  }
  uint64_t lo = 0, n = 0;
  std::memcpy(&lo, bytes.data() + 8, 8);
  std::memcpy(&n, bytes.data() + 16, 8);
  size_t off = kArchiveHeaderSize;
  for (uint64_t i = 0; i < n; ++i) {
    if (off + kLenSize > bytes.size()) {
      return Status::Corruption("archive segment truncated at record " +
                                std::to_string(i));
    }
    const uint16_t len = GetU16(bytes.data() + off);
    if (len == 0 || off + kLenSize + len + kCrcSize > bytes.size()) {
      return Status::Corruption("archive segment truncated at record " +
                                std::to_string(i));
    }
    const uint8_t* body = bytes.data() + off + kLenSize;
    const uint32_t crc = GetU32(body + len);
    if (Crc32(body, len, static_cast<uint32_t>(off)) != crc) {
      return Status::Corruption("archive record checksum mismatch at LSN " +
                                std::to_string(lo + i));
    }
    LogRecord rec;
    if (!ParseMutationBody(body, len, &rec)) {
      return Status::Corruption("malformed archive record at LSN " +
                                std::to_string(lo + i));
    }
    rec.lsn = lo + i;
    out->push_back(rec);
    off += kLenSize + len + kCrcSize;
  }
  if (off != bytes.size()) {
    return Status::Corruption("archive segment has trailing bytes");
  }
  *lo_lsn = lo;
  *count = n;
  return Status::OK();
}

std::string Wal::SegmentFileName(uint64_t lo_lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.seg",
                static_cast<unsigned long long>(lo_lsn));
  return name;
}

Status Wal::WriteSegmentFile(const std::string& dir,
                             std::span<const LogRecord> recs,
                             uint64_t lo_lsn, std::string* filename) {
  const std::vector<uint8_t> image = EncodeArchiveSegment(recs, lo_lsn);
  const std::string name = SegmentFileName(lo_lsn);
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp_path + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < image.size()) {
    const ssize_t n =
        ::write(fd, image.data() + written, image.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      std::remove(tmp_path.c_str());
      return Status::IoError("write " + tmp_path + ": " +
                             std::strerror(saved));
    }
    written += static_cast<size_t>(n);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("fsync " + tmp_path + ": " +
                           std::strerror(saved));
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int rename_errno = errno;
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish " + final_path + ": " +
                           std::strerror(rename_errno));
  }
  // The rename is not durable until the directory entry is synced.
  BMEH_RETURN_NOT_OK(SyncDirectory(dir));
  if (filename != nullptr) *filename = name;
  return Status::OK();
}

Status Wal::ReadSegmentFile(const std::string& path,
                            std::vector<LogRecord>* out, uint64_t* lo_lsn,
                            uint64_t* count) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t k;
  while ((k = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + k);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("read " + path);
  }
  Status st = DecodeArchiveSegment(bytes, out, lo_lsn, count);
  if (!st.ok()) {
    return Status(st.code(), path + ": " + st.message());
  }
  return st;
}

}  // namespace bmeh
