#include "src/store/backup.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/common/crc32.h"
#include "src/common/result.h"

namespace bmeh {

constexpr char BackupStore::kManifestName[];
constexpr char BackupStore::kPagesName[];

namespace {

/// First four bytes of a checkpoint.pages payload file ("BMPG").
constexpr uint32_t kPagesMagic = 0x424d5047;
constexpr size_t kPagesHeaderSize = 16;  // magic u32 | page_size u32 | count u64
constexpr char kBackupMagic[] = "BMEH-BACKUP v1";
/// Longest prev chain Restore will follow before declaring a cycle.
constexpr int kMaxChainLength = 4096;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool PathExists(const std::string& path, bool* is_dir) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  if (is_dir != nullptr) *is_dir = S_ISDIR(st.st_mode);
  return true;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status EnsureDir(const std::string& dir) {
  bool is_dir = false;
  if (PathExists(dir, &is_dir)) {
    if (!is_dir) return Status::Invalid(dir + " exists and is not a directory");
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return Status::IoError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  // Persist the new directory's own entry; losing the whole set directory
  // from its parent on a crash would silently void the backup.
  return SyncDirectory(ParentDir(dir));
}

Status ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  out->clear();
  uint8_t buf[1 << 16];
  size_t k;
  while ((k = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + k);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read failed: " + path);
  return Status::OK();
}

/// Writes `bytes` as `dir/name` with the crash-safe dance every sealed
/// artifact in this codebase uses: temp file, fsync, rename, directory
/// fsync.  A kill at any point leaves either the complete file or none.
Status WriteFileDurable(const std::string& dir, const std::string& name,
                        std::span<const uint8_t> bytes) {
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp_path + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      std::remove(tmp_path.c_str());
      return Status::IoError("write " + tmp_path + ": " + err);
    }
    off += static_cast<size_t>(n);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    std::remove(tmp_path.c_str());
    return Status::IoError("fsync " + tmp_path + ": " + err);
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish " + final_path + ": " + err);
  }
  return SyncDirectory(dir);
}

/// Releases a BeginBackup pin on every exit path.
class BackupPin {
 public:
  explicit BackupPin(BmehStore* store) : store_(store) {}
  ~BackupPin() {
    if (store_ != nullptr) store_->EndBackup();
  }
  BackupPin(const BackupPin&) = delete;
  BackupPin& operator=(const BackupPin&) = delete;

 private:
  BmehStore* store_;
};

/// Serializes the snapshot's checkpoint image into a checkpoint.pages
/// payload: header, then [page id | payload | crc] per image page, each
/// CRC seeded by the page id so a page can never verify at the wrong slot.
Status BuildPagesFile(BmehStore* store, const BmehStore::BackupSnapshot& snap,
                      int page_size, std::vector<uint8_t>* out) {
  out->assign(kPagesHeaderSize, 0);
  PutU32(out->data(), kPagesMagic);
  PutU32(out->data() + 4, static_cast<uint32_t>(page_size));
  PutU64(out->data() + 8, snap.image_pages.size());
  std::vector<uint8_t> page;
  for (const PageId id : snap.image_pages) {
    BMEH_RETURN_NOT_OK(store->ReadPageForBackup(id, &page));
    const size_t base = out->size();
    out->resize(base + 4 + page.size() + 4);
    PutU32(out->data() + base, id);
    std::memcpy(out->data() + base + 4, page.data(), page.size());
    PutU32(out->data() + base + 4 + page.size(),
           Crc32(page.data(), page.size(), id));
  }
  return Status::OK();
}

struct ImagePage {
  PageId id = kInvalidPageId;
  std::vector<uint8_t> payload;
};

/// Parses and fully verifies a checkpoint.pages payload.
Status ParsePagesFile(std::span<const uint8_t> bytes, int want_page_size,
                      std::vector<ImagePage>* out) {
  if (bytes.size() < kPagesHeaderSize) {
    return Status::Corruption("checkpoint.pages truncated");
  }
  if (GetU32(bytes.data()) != kPagesMagic) {
    return Status::Corruption("checkpoint.pages bad magic");
  }
  const uint32_t page_size = GetU32(bytes.data() + 4);
  if (static_cast<int>(page_size) != want_page_size) {
    return Status::Corruption("checkpoint.pages page size mismatch");
  }
  const uint64_t count = GetU64(bytes.data() + 8);
  const size_t per_page = 4 + page_size + 4;
  if (count > (bytes.size() - kPagesHeaderSize) / per_page ||
      bytes.size() != kPagesHeaderSize + count * per_page) {
    return Status::Corruption("checkpoint.pages size does not match count");
  }
  out->clear();
  out->reserve(count);
  size_t off = kPagesHeaderSize;
  for (uint64_t i = 0; i < count; ++i, off += per_page) {
    const PageId id = GetU32(bytes.data() + off);
    const uint8_t* payload = bytes.data() + off + 4;
    const uint32_t want = GetU32(payload + page_size);
    if (Crc32(payload, page_size, id) != want) {
      return Status::Corruption("checkpoint.pages: page " +
                                std::to_string(id) + " checksum mismatch");
    }
    out->push_back({id, std::vector<uint8_t>(payload, payload + page_size)});
  }
  return Status::OK();
}

/// One WAL segment available to a backup or restore: where it lives and
/// which LSNs it holds.
struct SegmentRef {
  std::string path;
  std::string name;
  uint64_t lo = 0;
  uint64_t count = 0;
  uint64_t hi() const { return lo + count - 1; }  // count > 0 always
};

/// Lists and verifies every wal-*.seg in `dir`, sorted by lo LSN.
/// Unreadable or torn segments are refused (a backup must not silently
/// skip part of the archive it may need).
Status ListSegments(const std::string& dir, std::vector<SegmentRef>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot open archive dir " + dir + ": " +
                           std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() == 24 && name.rfind("wal-", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".seg") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());  // name order == LSN order
  for (const std::string& name : names) {
    SegmentRef ref;
    ref.path = dir + "/" + name;
    ref.name = name;
    std::vector<Wal::LogRecord> scratch;
    BMEH_RETURN_NOT_OK(
        Wal::ReadSegmentFile(ref.path, &scratch, &ref.lo, &ref.count));
    if (ref.count == 0) continue;  // empty segments carry nothing
    out->push_back(std::move(ref));
  }
  return Status::OK();
}

uint64_t ParseU64(const std::string& s, bool* ok) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  *ok = errno == 0 && end != nullptr && *end == '\0' && !s.empty();
  return v;
}

std::string ManifestPath(const std::string& set_dir) {
  return set_dir + "/" + BackupStore::kManifestName;
}

/// Resolves a manifest's `prev` reference: absolute paths as-is,
/// otherwise a sibling of the referring set.
std::string ResolvePrev(const std::string& set_dir, const std::string& prev) {
  if (!prev.empty() && prev[0] == '/') return prev;
  return ParentDir(set_dir) + "/" + prev;
}

Status VerifyPayloadFile(const std::string& set_dir,
                         const BackupFileEntry& entry) {
  std::vector<uint8_t> bytes;
  BMEH_RETURN_NOT_OK(ReadWholeFile(set_dir + "/" + entry.name, &bytes));
  if (bytes.size() != entry.size) {
    return Status::Corruption(set_dir + "/" + entry.name +
                              ": size does not match manifest");
  }
  if (Crc32(bytes.data(), bytes.size()) != entry.crc) {
    return Status::Corruption(set_dir + "/" + entry.name +
                              ": checksum does not match manifest");
  }
  return Status::OK();
}

/// Appends the chain's verified WAL records to `records`, deduplicating
/// overlap by LSN and refusing gaps.  `next_needed` tracks the first LSN
/// not yet covered; on entry it is the full set's base_lsn.
Status AccumulateSegments(const std::string& set_dir,
                          const BackupSetInfo& manifest,
                          uint64_t* next_needed, uint64_t target,
                          std::vector<Wal::LogRecord>* records) {
  struct Loaded {
    uint64_t lo = 0;
    std::vector<Wal::LogRecord> recs;
  };
  std::vector<Loaded> segments;
  for (const BackupFileEntry& entry : manifest.files) {
    if (entry.name.rfind("wal-", 0) != 0) continue;
    Loaded seg;
    uint64_t count = 0;
    BMEH_RETURN_NOT_OK(Wal::ReadSegmentFile(set_dir + "/" + entry.name,
                                            &seg.recs, &seg.lo, &count));
    if (count == 0) continue;
    segments.push_back(std::move(seg));
  }
  std::sort(segments.begin(), segments.end(),
            [](const Loaded& a, const Loaded& b) { return a.lo < b.lo; });
  for (const Loaded& seg : segments) {
    const uint64_t hi = seg.lo + seg.recs.size() - 1;
    if (hi < *next_needed) continue;  // entirely duplicate coverage
    if (seg.lo > *next_needed) {
      return Status::Corruption(
          set_dir + ": archive gap — LSNs " + std::to_string(*next_needed) +
          ".." + std::to_string(seg.lo - 1) + " are missing");
    }
    for (const Wal::LogRecord& rec : seg.recs) {
      if (rec.lsn < *next_needed || rec.lsn > target) continue;
      records->push_back(rec);
    }
    *next_needed = hi + 1;
    if (*next_needed > target) break;
  }
  return Status::OK();
}

}  // namespace

Result<BackupSetInfo> BackupStore::ReadManifest(const std::string& set_dir) {
  const std::string path = ManifestPath(set_dir);
  std::vector<uint8_t> raw;
  BMEH_RETURN_NOT_OK(ReadWholeFile(path, &raw));
  std::string text(raw.begin(), raw.end());

  const size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::Corruption("backup manifest missing its crc seal: " + path);
  }
  uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &want) != 1) {
    return Status::Corruption("backup manifest crc seal unreadable: " + path);
  }
  if (Crc32(text.data(), crc_pos) != want) {
    return Status::Corruption("backup manifest checksum mismatch: " + path);
  }

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kBackupMagic) {
    return Status::Corruption("not a backup set manifest: " + path);
  }
  BackupSetInfo info;
  bool have_kind = false, have_page_size = false, have_watermark = false,
       have_base = false;
  int dims = 0;
  std::vector<int> widths;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    bool ok = true;
    if (key == "kind") {
      std::string kind;
      ls >> kind;
      if (kind == "full") {
        info.incremental = false;
      } else if (kind == "incremental") {
        info.incremental = true;
      } else {
        ok = false;
      }
      have_kind = ok;
    } else if (key == "page_size") {
      std::string v;
      ls >> v;
      info.page_size = static_cast<int>(ParseU64(v, &ok));
      have_page_size = ok;
    } else if (key == "dims") {
      std::string v;
      ls >> v;
      dims = static_cast<int>(ParseU64(v, &ok));
    } else if (key == "widths") {
      int w;
      while (ls >> w) widths.push_back(w);
    } else if (key == "generation") {
      std::string v;
      ls >> v;
      info.generation = ParseU64(v, &ok);
    } else if (key == "image_head") {
      std::string v;
      ls >> v;
      info.image_head = static_cast<PageId>(ParseU64(v, &ok));
    } else if (key == "base_lsn") {
      std::string v;
      ls >> v;
      info.base_lsn = ParseU64(v, &ok);
      have_base = ok;
    } else if (key == "watermark") {
      std::string v;
      ls >> v;
      info.watermark = ParseU64(v, &ok);
      have_watermark = ok;
    } else if (key == "prev") {
      ls >> info.prev;
      ok = !info.prev.empty();
    } else if (key == "file") {
      BackupFileEntry entry;
      std::string size_s, crc_s;
      ls >> entry.name >> size_s >> crc_s;
      entry.size = ParseU64(size_s, &ok);
      unsigned crc = 0;
      if (ok && std::sscanf(crc_s.c_str(), "%x", &crc) == 1) {
        entry.crc = crc;
      } else {
        ok = false;
      }
      if (ok && entry.name.find('/') != std::string::npos) ok = false;
      if (ok) info.files.push_back(std::move(entry));
    }
    // Unknown keys are ignored so newer writers stay readable.
    if (!ok) {
      return Status::Corruption("backup manifest field unreadable: " + line +
                                " (" + path + ")");
    }
  }
  if (!have_kind || !have_page_size || !have_watermark || !have_base) {
    return Status::Corruption("backup manifest incomplete: " + path);
  }
  if (dims <= 0 || dims > kMaxDims ||
      static_cast<int>(widths.size()) != dims) {
    return Status::Corruption("backup manifest schema unreadable: " + path);
  }
  info.schema = KeySchema(std::span<const int>(widths.data(), widths.size()));
  if (info.incremental && info.prev.empty()) {
    return Status::Corruption("incremental backup manifest names no prev: " +
                              path);
  }
  return info;
}

Status BackupStore::Verify(const std::string& set_dir) {
  BMEH_ASSIGN_OR_RETURN(const BackupSetInfo info, ReadManifest(set_dir));
  for (const BackupFileEntry& entry : info.files) {
    BMEH_RETURN_NOT_OK(VerifyPayloadFile(set_dir, entry));
  }
  return Status::OK();
}

Result<BackupRunInfo> BackupStore::Run(BmehStore* store,
                                       const std::string& out_dir,
                                       const BackupOptions& options) {
  if (store == nullptr) return Status::Invalid("backup: null store");
  const bool incremental = !options.base_set.empty();

  // An incremental run needs the previous set's watermark before touching
  // the store; a corrupt base refuses the whole run.
  BackupSetInfo prev;
  if (incremental) {
    BMEH_ASSIGN_OR_RETURN(prev, ReadManifest(options.base_set));
  }

  BMEH_RETURN_NOT_OK(EnsureDir(out_dir));
  if (PathExists(ManifestPath(out_dir), nullptr)) {
    return Status::AlreadyExists(out_dir + " already holds a sealed backup");
  }

  BMEH_ASSIGN_OR_RETURN(BmehStore::BackupSnapshot snap, store->BeginBackup());
  BackupPin pin(store);
  const int page_size = store->page_store().page_size();

  if (incremental) {
    if (prev.page_size != page_size) {
      return Status::Invalid("incremental backup: page size differs from " +
                             options.base_set);
    }
    if (snap.watermark < prev.watermark) {
      return Status::Invalid(
          "incremental backup: store history (LSN " +
          std::to_string(snap.watermark) + ") is behind the base set (LSN " +
          std::to_string(prev.watermark) + ") — not the same store");
    }
  }

  std::string body = std::string(kBackupMagic) + "\n";
  body += std::string("kind ") + (incremental ? "incremental" : "full") + "\n";
  body += "page_size " + std::to_string(page_size) + "\n";
  const KeySchema& schema = store->schema();
  body += "dims " + std::to_string(schema.dims()) + "\n";
  body += "widths";
  for (int j = 0; j < schema.dims(); ++j) {
    body += " " + std::to_string(schema.width(j));
  }
  body += "\n";
  body += "generation " + std::to_string(snap.generation) + "\n";
  body += "image_head " + std::to_string(snap.image_head) + "\n";
  uint64_t bytes_written = 0;
  auto add_file = [&](const std::string& name,
                      std::span<const uint8_t> bytes) {
    char entry[64];
    std::snprintf(entry, sizeof(entry), " %llu %08x\n",
                  static_cast<unsigned long long>(bytes.size()),
                  Crc32(bytes.data(), bytes.size()));
    body += "file " + name + entry;
    bytes_written += bytes.size();
  };

  uint64_t set_base = snap.base_lsn;
  if (!incremental) {
    // Full set: the checkpoint image plus the live WAL tail.
    std::vector<uint8_t> pages;
    BMEH_RETURN_NOT_OK(BuildPagesFile(store, snap, page_size, &pages));
    BMEH_RETURN_NOT_OK(WriteFileDurable(out_dir, kPagesName, pages));
    add_file(kPagesName, pages);
  } else {
    // Incremental set: every LSN in (prev.watermark, snap.watermark],
    // assembled from checkpoint-time archive segments (for history the
    // live log already truncated) plus the live tail.
    const uint64_t needed_lo = prev.watermark + 1;
    set_base = needed_lo;
    if (snap.base_lsn > needed_lo) {
      // Part of the needed span was checkpointed away — fetch it from the
      // archive, verifying the segments tile the span with no gap.
      if (options.wal_archive_dir.empty()) {
        return Status::Invalid(
            "incremental backup needs LSNs " + std::to_string(needed_lo) +
            ".." + std::to_string(snap.base_lsn - 1) +
            " but no WAL archive dir was given (store checkpointed them "
            "away)");
      }
      std::vector<SegmentRef> archived;
      BMEH_RETURN_NOT_OK(ListSegments(options.wal_archive_dir, &archived));
      uint64_t covered_to = needed_lo;  // first LSN not yet covered
      for (const SegmentRef& seg : archived) {
        if (seg.hi() < covered_to) continue;
        if (covered_to >= snap.base_lsn) break;
        if (seg.lo > covered_to) {
          return Status::Corruption(
              options.wal_archive_dir + ": archive gap — LSNs " +
              std::to_string(covered_to) + ".." + std::to_string(seg.lo - 1) +
              " are missing");
        }
        std::vector<uint8_t> raw;
        BMEH_RETURN_NOT_OK(ReadWholeFile(seg.path, &raw));
        BMEH_RETURN_NOT_OK(WriteFileDurable(out_dir, seg.name, raw));
        add_file(seg.name, raw);
        covered_to = seg.hi() + 1;
      }
      if (covered_to < snap.base_lsn) {
        return Status::Corruption(
            options.wal_archive_dir + ": archive gap — LSNs " +
            std::to_string(covered_to) + ".." +
            std::to_string(snap.base_lsn - 1) + " are missing");
      }
    }
  }

  // The live WAL tail, shared by both kinds (absent when the log holds
  // nothing past what the set already covers).
  std::vector<Wal::LogRecord> tail;
  for (const Wal::LogRecord& rec : snap.wal_records) {
    if (incremental && rec.lsn <= prev.watermark) continue;
    tail.push_back(rec);
  }
  if (!tail.empty()) {
    const uint64_t tail_lo = tail.front().lsn;
    const std::vector<uint8_t> seg =
        Wal::EncodeArchiveSegment(tail, tail_lo);
    const std::string name = Wal::SegmentFileName(tail_lo);
    BMEH_RETURN_NOT_OK(WriteFileDurable(out_dir, name, seg));
    add_file(name, seg);
  }

  body += "base_lsn " + std::to_string(set_base) + "\n";
  body += "watermark " + std::to_string(snap.watermark) + "\n";
  if (incremental) body += "prev " + options.base_set + "\n";
  char seal[32];
  std::snprintf(seal, sizeof(seal), "crc %08x\n",
                Crc32(body.data(), body.size()));
  body += seal;

  // Seal last: until this rename lands, the set directory holds no valid
  // manifest and a restore refuses it — the crash-anywhere guarantee.
  BMEH_RETURN_NOT_OK(WriteFileDurable(
      out_dir, kManifestName,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(body.data()), body.size())));

  if (options.metrics != nullptr) {
    options.metrics->GetCounter("store_backups_total")->Inc();
    options.metrics->GetCounter("backup_bytes_total")->Inc(bytes_written);
  }

  BackupRunInfo run;
  run.incremental = incremental;
  run.base_lsn = set_base;
  run.watermark = snap.watermark;
  run.bytes = bytes_written;
  return run;
}

Result<RestoreRunInfo> RestoreStore::Run(const std::string& set_dir,
                                         const std::string& dest_path,
                                         const RestoreOptions& options) {
  if (PathExists(dest_path, nullptr)) {
    return Status::AlreadyExists("restore destination exists: " + dest_path);
  }

  // Walk the prev chain back to the full ancestor, verifying every
  // manifest and payload file on the way.  chain[0] ends up the full set.
  std::vector<std::pair<std::string, BackupSetInfo>> chain;
  std::string cursor = set_dir;
  for (;;) {
    if (static_cast<int>(chain.size()) >= kMaxChainLength) {
      return Status::Corruption("backup prev chain too long (cycle?) at " +
                                cursor);
    }
    BMEH_ASSIGN_OR_RETURN(BackupSetInfo info, BackupStore::ReadManifest(cursor));
    for (const BackupFileEntry& entry : info.files) {
      BMEH_RETURN_NOT_OK(VerifyPayloadFile(cursor, entry));
    }
    const bool is_full = !info.incremental;
    chain.emplace_back(cursor, std::move(info));
    if (is_full) break;
    cursor = ResolvePrev(cursor, chain.back().second.prev);
  }
  std::reverse(chain.begin(), chain.end());
  const BackupSetInfo& full = chain.front().second;
  const BackupSetInfo& last = chain.back().second;

  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    if (chain[i].second.page_size != full.page_size) {
      return Status::Corruption("backup chain page sizes disagree at " +
                                chain[i].first);
    }
  }

  const uint64_t target = options.to_lsn == 0 ? last.watermark : options.to_lsn;
  if (target > last.watermark) {
    return Status::Invalid("restore target LSN " + std::to_string(target) +
                           " is beyond the backup watermark " +
                           std::to_string(last.watermark));
  }
  if (target + 1 < full.base_lsn) {
    return Status::Invalid("restore target LSN " + std::to_string(target) +
                           " predates the backup image (base LSN " +
                           std::to_string(full.base_lsn) +
                           "); take an older full backup");
  }

  // The image pages, fully verified.
  std::vector<uint8_t> raw;
  std::vector<ImagePage> image;
  bool have_pages_file = false;
  for (const BackupFileEntry& entry : full.files) {
    if (entry.name == BackupStore::kPagesName) have_pages_file = true;
  }
  if (!have_pages_file) {
    return Status::Corruption(chain.front().first +
                              ": full backup set has no checkpoint.pages");
  }
  BMEH_RETURN_NOT_OK(ReadWholeFile(
      chain.front().first + "/" + BackupStore::kPagesName, &raw));
  BMEH_RETURN_NOT_OK(ParsePagesFile(raw, full.page_size, &image));
  if (full.image_head == kInvalidPageId && !image.empty()) {
    return Status::Corruption(chain.front().first +
                              ": image pages present but no image head");
  }
  if (full.image_head != kInvalidPageId && image.empty()) {
    return Status::Corruption(chain.front().first +
                              ": image head present but no image pages");
  }

  // The WAL records, verified and tiled with no gaps up to the target.
  std::vector<Wal::LogRecord> records;
  uint64_t next_needed = full.base_lsn;
  for (const auto& [dir, manifest] : chain) {
    if (next_needed > target) break;
    BMEH_RETURN_NOT_OK(
        AccumulateSegments(dir, manifest, &next_needed, target, &records));
  }
  if (next_needed <= target) {
    return Status::Corruption(
        set_dir + ": archive ends at LSN " + std::to_string(next_needed - 1) +
        " but the restore target is " + std::to_string(target));
  }

  // Build the destination in a temp file; only a fully verified, fully
  // replayed store is renamed into place.
  const std::string tmp_path = dest_path + ".restore-tmp";
  std::remove(tmp_path.c_str());
  auto fail = [&](Status st) -> Status {
    std::remove(tmp_path.c_str());
    return st;
  };

  {
    auto created = FilePageStore::Create(tmp_path, full.page_size);
    if (!created.ok()) return fail(created.status());
    std::unique_ptr<FilePageStore> dest = std::move(created).ValueOrDie();

    PageId max_id = dest->first_data_page();  // the superblock page
    for (const ImagePage& p : image) max_id = std::max(max_id, p.id);
    std::vector<bool> is_image(max_id + 1, false);
    for (const ImagePage& p : image) {
      if (p.id <= dest->first_data_page()) {
        return fail(Status::Corruption(
            "backup image claims reserved page " + std::to_string(p.id)));
      }
      if (is_image[p.id]) {
        return fail(Status::Corruption("backup image repeats page " +
                                       std::to_string(p.id)));
      }
      is_image[p.id] = true;
    }

    // A fresh file store hands out ids sequentially, so allocating up to
    // max_id lets every image page land at its original id — intra-image
    // links survive byte-for-byte.
    for (PageId id = dest->first_data_page(); id <= max_id; ++id) {
      auto got = dest->Allocate();
      if (!got.ok()) return fail(got.status());
      if (got.ValueOrDie() != id) {
        return fail(Status::IoError("restore: fresh store allocated page " +
                                    std::to_string(got.ValueOrDie()) +
                                    " where " + std::to_string(id) +
                                    " was expected"));
      }
    }
    const PageId super_page = dest->first_data_page();
    Status st = internal::WriteStoreSuperblock(
        dest.get(), super_page, full.image_head, full.generation,
        kInvalidPageId, full.base_lsn);
    if (!st.ok()) return fail(st);
    for (const ImagePage& p : image) {
      st = dest->Write(p.id, p.payload);
      if (!st.ok()) return fail(st);
    }
    for (PageId id = super_page + 1; id <= max_id; ++id) {
      if (!is_image[id]) {
        st = dest->Free(id);
        if (!st.ok()) return fail(st);
      }
    }
    st = dest->Sync();
    if (!st.ok()) return fail(st);
  }

  // Reopen through the real recovery path (free-list rebuild included)
  // and replay the archived history on top of the image.
  StoreOptions store_options = options.store;
  store_options.page_size = full.page_size;
  store_options.schema = full.schema;
  obs::Gauge* replay_gauge =
      options.metrics != nullptr
          ? options.metrics->GetGauge("restore_replay_lsn")
          : nullptr;
  uint64_t replayed = 0;
  {
    auto opened = BmehStore::Open(tmp_path, store_options);
    if (!opened.ok()) return fail(opened.status());
    std::unique_ptr<BmehStore> store = std::move(opened).ValueOrDie();
    if (store->degraded()) {
      return fail(Status::Corruption(
          "restore: rebuilt store opened degraded — backup image damaged"));
    }
    if (store->durable_lsn() != full.base_lsn - 1) {
      return fail(Status::Corruption(
          "restore: rebuilt store starts at LSN " +
          std::to_string(store->durable_lsn()) + ", expected " +
          std::to_string(full.base_lsn - 1)));
    }

    constexpr size_t kReplayBatch = 512;
    WriteBatch batch;
    auto flush = [&]() -> Status {
      if (batch.empty()) return Status::OK();
      std::vector<Status> per_record;
      const Status wst = store->Write(batch, &per_record);
      if (!wst.ok()) {
        // Replaying the exact logged history onto the exact image it was
        // logged against produces no logical no-ops; any refusal means
        // the archive and the image disagree.
        for (const Status& rst : per_record) {
          if (!rst.ok() && rst.code() != StatusCode::kAlreadyExists &&
              rst.code() != StatusCode::kKeyError) {
            return wst;
          }
        }
        if (per_record.empty()) return wst;
      }
      replayed += batch.size();
      batch.Clear();
      if (replay_gauge != nullptr) {
        replay_gauge->Set(static_cast<int64_t>(store->durable_lsn()));
      }
      return Status::OK();
    };
    for (const Wal::LogRecord& rec : records) {
      if (rec.op == Wal::kOpInsert) {
        batch.Put(rec.key, rec.payload);
      } else {
        batch.Delete(rec.key);
      }
      if (batch.size() >= kReplayBatch) {
        const Status st = flush();
        if (!st.ok()) return fail(st);
      }
    }
    Status st = flush();
    if (!st.ok()) return fail(st);

    if (store->durable_lsn() != target) {
      return fail(Status::Corruption(
          "restore: replay reached LSN " +
          std::to_string(store->durable_lsn()) + ", target was " +
          std::to_string(target)));
    }
    if (replay_gauge != nullptr) {
      replay_gauge->Set(static_cast<int64_t>(target));
    }
    st = store->Checkpoint();
    if (!st.ok()) return fail(st);
  }

  if (::rename(tmp_path.c_str(), dest_path.c_str()) != 0) {
    return fail(Status::IoError("cannot publish " + dest_path + ": " +
                                std::strerror(errno)));
  }
  Status st = SyncDirectory(ParentDir(dest_path));
  if (!st.ok()) return st;

  RestoreRunInfo run;
  run.replay_lsn = target;
  run.records_replayed = replayed;
  return run;
}

}  // namespace bmeh
