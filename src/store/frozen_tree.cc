#include "src/store/frozen_tree.h"

#include <cstring>
#include <unordered_map>

#include "src/hashdir/descent.h"
#include "src/hashdir/range_walk.h"

namespace bmeh {

using hashdir::DirNode;
using hashdir::Entry;
using hashdir::IndexTuple;
using hashdir::Ref;
using hashdir::RefKind;

namespace {

constexpr uint32_t kFrozenMagic = 0x424d465a;  // "BMFZ"
constexpr uint8_t kNodePageType = 1;
constexpr uint8_t kDataPageType = 2;

class PageWriter {
 public:
  explicit PageWriter(int page_size) : buf_(page_size, 0) {}

  bool U8(uint8_t v) { return Put(&v, 1); }
  bool U16(uint16_t v) { return Put(&v, 2); }
  bool U32(uint32_t v) { return Put(&v, 4); }
  bool U64(uint64_t v) { return Put(&v, 8); }

  std::span<const uint8_t> bytes() const { return buf_; }
  std::span<uint8_t> tail() {
    return std::span<uint8_t>(buf_).subspan(pos_);
  }
  void Advance(size_t n) { pos_ += n; }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool Put(const void* p, size_t n) {
    if (pos_ + n > buf_.size()) return false;
    std::memcpy(buf_.data() + pos_, p, n);
    pos_ += n;
    return true;
  }
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

class PageReader {
 public:
  explicit PageReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> U8() { return Get<uint8_t>(); }
  Result<uint16_t> U16() { return Get<uint16_t>(); }
  Result<uint32_t> U32() { return Get<uint32_t>(); }
  Result<uint64_t> U64() { return Get<uint64_t>(); }
  std::span<const uint8_t> tail() const { return data_.subspan(pos_); }

 private:
  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Corruption("truncated frozen page");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Serializes one directory node (with child refs already translated to
/// store page ids) into a page image.
Status EncodeNode(const DirNode& node, int dims, PageWriter* w) {
  const auto& hist = node.history();
  bool ok = w->U8(kNodePageType);
  ok = ok && w->U16(static_cast<uint16_t>(hist.event_count()));
  for (int i = 0; ok && i < hist.event_count(); ++i) {
    ok = w->U8(static_cast<uint8_t>(hist.event_dim(i)));
  }
  for (uint64_t a = 0; ok && a < node.entry_count(); ++a) {
    const Entry& e = node.at_address(a);
    ok = w->U8(static_cast<uint8_t>(e.ref.kind));
    ok = ok && w->U32(e.ref.id);
    for (int j = 0; ok && j < dims; ++j) ok = w->U8(e.h[j]);
    ok = ok && w->U8(e.m);
  }
  if (!ok) {
    return Status::CapacityError(
        "directory node does not fit in one store page; use a larger "
        "page size or smaller phi");
  }
  return Status::OK();
}

Result<DirNode> DecodeNode(std::span<const uint8_t> data,
                           const KeySchema& schema) {
  PageReader r(data);
  const int d = schema.dims();
  BMEH_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type != kNodePageType) {
    return Status::Corruption("expected a frozen node page");
  }
  BMEH_ASSIGN_OR_RETURN(uint16_t n_events, r.U16());
  DirNode node(d);
  for (uint16_t i = 0; i < n_events; ++i) {
    BMEH_ASSIGN_OR_RETURN(uint8_t dim, r.U8());
    if (dim >= d || node.depth(dim) >= schema.width(dim)) {
      return Status::Corruption("bad node growth event");
    }
    node.Double(dim);
  }
  for (uint64_t a = 0; a < node.entry_count(); ++a) {
    Entry e;
    BMEH_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(RefKind::kNode)) {
      return Status::Corruption("bad frozen ref kind");
    }
    e.ref.kind = static_cast<RefKind>(kind);
    BMEH_ASSIGN_OR_RETURN(e.ref.id, r.U32());
    for (int j = 0; j < d; ++j) {
      BMEH_ASSIGN_OR_RETURN(e.h[j], r.U8());
      if (e.h[j] > node.depth(j)) {
        return Status::Corruption("frozen local depth exceeds node depth");
      }
    }
    BMEH_ASSIGN_OR_RETURN(e.m, r.U8());
    node.at_address(a) = e;
  }
  return node;
}

}  // namespace

Result<PageId> FrozenBmehTree::Freeze(const BmehTree& tree,
                                      PageStore* store) {
  const int d = tree.schema().dims();

  // Pass 1: reserve a store page for every node and data page.
  std::unordered_map<uint32_t, PageId> node_page;
  std::unordered_map<uint32_t, PageId> data_page;
  Status bad = Status::OK();
  tree.nodes().ForEach([&](uint32_t id, const DirNode&) {
    if (!bad.ok()) return;
    auto p = store->Allocate();
    if (!p.ok()) {
      bad = p.status();
      return;
    }
    node_page[id] = *p;
  });
  BMEH_RETURN_NOT_OK(bad);
  tree.data_pages().ForEach([&](uint32_t id, const DataPage&) {
    if (!bad.ok()) return;
    auto p = store->Allocate();
    if (!p.ok()) {
      bad = p.status();
      return;
    }
    data_page[id] = *p;
  });
  BMEH_RETURN_NOT_OK(bad);

  // Pass 2: write data pages.
  tree.data_pages().ForEach([&](uint32_t id, const DataPage& page) {
    if (!bad.ok()) return;
    PageWriter w(store->page_size());
    if (!w.U8(kDataPageType) ||
        w.remaining() <
            static_cast<size_t>(
                DataPage::SerializedSize(page.capacity(), d))) {
      bad = Status::CapacityError(
          "data page does not fit in one store page; use a larger page "
          "size or smaller b");
      return;
    }
    page.Serialize(d, w.tail());
    bad = store->Write(data_page[id], w.bytes());
  });
  BMEH_RETURN_NOT_OK(bad);

  // Pass 3: write directory nodes with translated child refs.
  tree.nodes().ForEach([&](uint32_t id, const DirNode& node) {
    if (!bad.ok()) return;
    // Copy the node and rewrite refs.
    DirNode copy(d);
    {
      const auto& hist = node.history();
      for (int i = 0; i < hist.event_count(); ++i) {
        copy.Double(hist.event_dim(i));
      }
      for (uint64_t a = 0; a < node.entry_count(); ++a) {
        Entry e = node.at_address(a);
        if (e.ref.is_node()) {
          e.ref.id = node_page.at(e.ref.id);
        } else if (e.ref.is_page()) {
          e.ref.id = data_page.at(e.ref.id);
        }
        copy.at_address(a) = e;
      }
    }
    PageWriter w(store->page_size());
    bad = EncodeNode(copy, d, &w);
    if (!bad.ok()) return;
    bad = store->Write(node_page[id], w.bytes());
  });
  BMEH_RETURN_NOT_OK(bad);

  // Metadata page.
  BMEH_ASSIGN_OR_RETURN(PageId meta, store->Allocate());
  PageWriter w(store->page_size());
  bool ok = w.U32(kFrozenMagic);
  ok = ok && w.U8(static_cast<uint8_t>(d));
  for (int j = 0; ok && j < d; ++j) {
    ok = w.U8(static_cast<uint8_t>(tree.schema().width(j)));
  }
  ok = ok && w.U32(static_cast<uint32_t>(tree.page_capacity()));
  ok = ok && w.U32(static_cast<uint32_t>(tree.height()));
  ok = ok && w.U64(tree.Stats().records);
  ok = ok && w.U32(node_page.at(tree.root_id()));
  if (!ok) return Status::CapacityError("metadata page overflow");
  BMEH_RETURN_NOT_OK(store->Write(meta, w.bytes()));
  return meta;
}

FrozenBmehTree::FrozenBmehTree(PageStore* store, const KeySchema& schema,
                               int page_capacity, int levels,
                               uint64_t records, PageId root_page,
                               int pool_pages)
    : store_(store),
      schema_(schema),
      page_capacity_(page_capacity),
      levels_(levels),
      records_(records),
      root_page_(root_page),
      pool_(std::make_unique<BufferPool>(store, pool_pages)) {}

Result<std::unique_ptr<FrozenBmehTree>> FrozenBmehTree::Open(
    PageStore* store, PageId meta, int pool_pages) {
  std::vector<uint8_t> buf(store->page_size());
  BMEH_RETURN_NOT_OK(store->Read(meta, buf));
  PageReader r(buf);
  BMEH_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kFrozenMagic) {
    return Status::Corruption("bad frozen-tree magic");
  }
  BMEH_ASSIGN_OR_RETURN(uint8_t d, r.U8());
  if (d < 1 || d > kMaxDims) return Status::Corruption("bad dims");
  std::array<int, kMaxDims> widths{};
  for (int j = 0; j < d; ++j) {
    BMEH_ASSIGN_OR_RETURN(uint8_t wj, r.U8());
    if (wj < 1 || wj > 32) return Status::Corruption("bad width");
    widths[j] = wj;
  }
  KeySchema schema(std::span<const int>(widths.data(), d));
  BMEH_ASSIGN_OR_RETURN(uint32_t b, r.U32());
  BMEH_ASSIGN_OR_RETURN(uint32_t levels, r.U32());
  BMEH_ASSIGN_OR_RETURN(uint64_t records, r.U64());
  BMEH_ASSIGN_OR_RETURN(uint32_t root_page, r.U32());
  if (b < 1 || levels < 1) return Status::Corruption("bad frozen header");

  auto tree = std::unique_ptr<FrozenBmehTree>(new FrozenBmehTree(
      store, schema, static_cast<int>(b), static_cast<int>(levels), records,
      root_page, pool_pages));
  // Decode and pin the root once; later probes do not pay for it.
  BMEH_ASSIGN_OR_RETURN(DirNode root, tree->FetchNode(root_page));
  tree->root_ = std::make_unique<DirNode>(std::move(root));
  tree->base_reads_ = store->stats().reads;
  return tree;
}

Result<DirNode> FrozenBmehTree::FetchNode(PageId page) {
  BMEH_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  return DecodeNode(h.data(), schema_);
}

Result<DataPage> FrozenBmehTree::FetchDataPage(PageId page) {
  BMEH_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  PageReader r(h.data());
  BMEH_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type != kDataPageType) {
    return Status::Corruption("expected a frozen data page");
  }
  return DataPage::Deserialize(page, page_capacity_, schema_.dims(),
                               r.tail());
}

Result<uint64_t> FrozenBmehTree::Search(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  const DirNode* node = root_.get();
  std::unique_ptr<DirNode> current;
  std::array<uint16_t, kMaxDims> consumed{};
  for (int level = 0; level <= levels_; ++level) {
    IndexTuple t = hashdir::TupleInNode(schema_, *node, key, consumed);
    const Entry e = node->at(t);
    if (e.ref.is_nil()) {
      return Status::KeyError("key " + key.ToString() + " not found");
    }
    if (e.ref.is_page()) {
      BMEH_ASSIGN_OR_RETURN(DataPage page, FetchDataPage(e.ref.id));
      auto payload = page.Lookup(key);
      if (!payload) {
        return Status::KeyError("key " + key.ToString() + " not found");
      }
      return *payload;
    }
    for (int j = 0; j < schema_.dims(); ++j) {
      consumed[j] = static_cast<uint16_t>(consumed[j] + e.h[j]);
    }
    BMEH_ASSIGN_OR_RETURN(DirNode next, FetchNode(e.ref.id));
    current = std::make_unique<DirNode>(std::move(next));
    node = current.get();
  }
  return Status::Corruption("frozen tree deeper than its recorded height");
}

Status FrozenBmehTree::RangeSearch(const RangePredicate& pred,
                                   std::vector<Record>* out) {
  // Per-query caches keep decoded nodes/pages alive for the walk.
  std::unordered_map<uint32_t, std::unique_ptr<DirNode>> nodes;
  Status bad = Status::OK();

  hashdir::RangeWalkCallbacks cbs;
  cbs.get_node = [&](uint32_t id, int) -> const DirNode* {
    if (id == root_page_) return root_.get();
    auto it = nodes.find(id);
    if (it != nodes.end()) return it->second.get();
    auto fetched = FetchNode(id);
    if (!fetched.ok()) {
      bad = fetched.status();
      return nullptr;
    }
    auto owned = std::make_unique<DirNode>(std::move(fetched).ValueOrDie());
    const DirNode* raw = owned.get();
    nodes.emplace(id, std::move(owned));
    return raw;
  };
  cbs.visit_page = [&](uint32_t id, const RangePredicate& p,
                       std::vector<Record>* o) {
    auto page = FetchDataPage(id);
    if (!page.ok()) {
      bad = page.status();
      return;
    }
    for (const Record& rec : page->records()) {
      if (p.Matches(rec.key)) o->push_back(rec);
    }
  };
  hashdir::RangeWalkStats stats;
  Status st = hashdir::RangeWalk(schema_, pred, Ref::Node(root_page_), cbs,
                                 out, &stats);
  BMEH_RETURN_NOT_OK(bad);
  return st;
}

}  // namespace bmeh
