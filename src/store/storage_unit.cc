#include "src/store/storage_unit.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bmeh {

namespace {

/// Fsyncs the directory containing `path` so a rename inside it is
/// durable (the file-data fsync alone does not persist the direntry).
/// Failures are sticky per directory — see SyncDirectory.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  return SyncDirectory(dir);
}

}  // namespace

std::string StorageUnit::ShardArchiveDir(const std::string& root,
                                         int shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d", shard_index);
  return root + "/" + name;
}

Result<std::unique_ptr<StorageUnit>> StorageUnit::Open(
    int shard_index, const std::string& path, const StoreOptions& options) {
  StoreOptions unit_options = options;
  unit_options.metrics_label = MetricsLabel(shard_index);
  unit_options.shard_index = shard_index;
  if (!unit_options.wal_archive_dir.empty()) {
    unit_options.wal_archive_dir =
        ShardArchiveDir(unit_options.wal_archive_dir, shard_index);
  }
  BMEH_ASSIGN_OR_RETURN(auto store, BmehStore::Open(path, unit_options));
  return std::unique_ptr<StorageUnit>(new StorageUnit(
      shard_index, path, std::move(unit_options), std::move(store)));
}

Result<std::unique_ptr<StorageUnit>> StorageUnit::Open(
    int shard_index, std::unique_ptr<PageStore> device,
    const StoreOptions& options) {
  StoreOptions unit_options = options;
  unit_options.metrics_label = MetricsLabel(shard_index);
  unit_options.shard_index = shard_index;
  if (!unit_options.wal_archive_dir.empty()) {
    unit_options.wal_archive_dir =
        ShardArchiveDir(unit_options.wal_archive_dir, shard_index);
  }
  BMEH_ASSIGN_OR_RETURN(auto store,
                        BmehStore::Open(std::move(device), unit_options));
  return std::unique_ptr<StorageUnit>(new StorageUnit(
      shard_index, std::string(), std::move(unit_options), std::move(store)));
}

std::unique_ptr<StorageUnit> StorageUnit::Down(int shard_index,
                                               std::string path,
                                               const StoreOptions& options,
                                               Status reason) {
  StoreOptions unit_options = options;
  unit_options.metrics_label = MetricsLabel(shard_index);
  auto unit = std::unique_ptr<StorageUnit>(new StorageUnit(
      shard_index, std::move(path), std::move(unit_options), nullptr));
  unit->SetDown(std::move(reason));
  return unit;
}

void StorageUnit::SetDown(Status reason) {
  down_.store(!reason.ok(), std::memory_order_release);
  std::lock_guard<std::mutex> g(reason_mu_);
  down_reason_ = std::move(reason);
}

void StorageUnit::BringDown(Status reason) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (store_ != nullptr) {
    // Poison before closing: the destructor then skips its checkpoint, so
    // the file is left exactly as a crash would leave it (synced WAL
    // records intact, checkpoint image untouched).
    store_->SimulateCrashForTesting();
    store_.reset();
  }
  if (reason.ok()) reason = Status::Unavailable("shard brought down");
  SetDown(std::move(reason));
}

Status StorageUnit::Repair(ShardRepairReport* report) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (path_.empty()) {
    return Status::Invalid("shard " + std::to_string(shard_index_) +
                           ": cannot repair a device-backed unit");
  }
  // Close whatever instance is left.  A poisoned or degraded store skips
  // its destructor checkpoint; a healthy one checkpoints cleanly first.
  if (store_ != nullptr) store_.reset();
  SetDown(Status::Unavailable("shard repair in progress"));

  ShardRepairReport local;
  ShardRepairReport* rep = report != nullptr ? report : &local;
  *rep = ShardRepairReport();

  // Rung 1: a structurally clean file just reopens (WAL replay included).
  const Status scrub_st = ScrubStore(path_, &rep->scrub, options_.metrics);
  if (scrub_st.ok() && rep->scrub.clean()) {
    auto reopened = BmehStore::Open(path_, options_);
    if (reopened.ok() && !reopened.ValueOrDie()->degraded()) {
      store_ = std::move(reopened).ValueOrDie();
      SetDown(Status::OK());
      return Status::OK();
    }
    // A clean scrub that still cannot open healthy (schema mismatch,
    // tolerated-degraded open, ...) falls through to salvage.
  }

  // Rung 2: rewrite the file from every salvageable record, then swap the
  // rewritten file in atomically (rename + parent-dir fsync).
  rep->salvaged = true;
  const std::string rebuilt = path_ + ".repair";
  StoreOptions salvage_options = options_;
  salvage_options.tolerate_corruption = true;
  Status st = SalvageStore(path_, rebuilt, salvage_options, &rep->salvage,
                           options_.metrics);
  if (!st.ok()) {
    std::remove(rebuilt.c_str());
    SetDown(st);
    return st;
  }
  if (::rename(rebuilt.c_str(), path_.c_str()) != 0) {
    st = Status::IoError("rename repaired shard over " + path_ + ": " +
                         std::strerror(errno));
    std::remove(rebuilt.c_str());
    SetDown(st);
    return st;
  }
  st = SyncParentDir(path_);
  if (!st.ok()) {
    SetDown(st);
    return st;
  }

  auto reopened = BmehStore::Open(path_, options_);
  if (!reopened.ok()) {
    SetDown(reopened.status());
    return reopened.status();
  }
  store_ = std::move(reopened).ValueOrDie();
  SetDown(Status::OK());
  return Status::OK();
}

Status StorageUnit::TryReopen() {
  std::unique_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return Status::Unavailable("shard " + std::to_string(shard_index_) +
                               ": repair in progress");
  }
  if (store_ != nullptr && healthy()) return Status::OK();
  if (path_.empty()) {
    return Status::Invalid("shard " + std::to_string(shard_index_) +
                           ": cannot reopen a device-backed unit");
  }
  store_.reset();
  auto reopened = BmehStore::Open(path_, options_);
  if (!reopened.ok()) {
    SetDown(reopened.status());
    return reopened.status();
  }
  store_ = std::move(reopened).ValueOrDie();
  SetDown(Status::OK());
  return Status::OK();
}

}  // namespace bmeh
