#include "src/store/storage_unit.h"

namespace bmeh {

Result<std::unique_ptr<StorageUnit>> StorageUnit::Open(
    int shard_index, const std::string& path, const StoreOptions& options) {
  StoreOptions unit_options = options;
  unit_options.metrics_label = MetricsLabel(shard_index);
  BMEH_ASSIGN_OR_RETURN(auto store, BmehStore::Open(path, unit_options));
  return std::unique_ptr<StorageUnit>(
      new StorageUnit(shard_index, path, std::move(store)));
}

Result<std::unique_ptr<StorageUnit>> StorageUnit::Open(
    int shard_index, std::unique_ptr<PageStore> device,
    const StoreOptions& options) {
  StoreOptions unit_options = options;
  unit_options.metrics_label = MetricsLabel(shard_index);
  BMEH_ASSIGN_OR_RETURN(auto store,
                        BmehStore::Open(std::move(device), unit_options));
  return std::unique_ptr<StorageUnit>(
      new StorageUnit(shard_index, std::string(), std::move(store)));
}

}  // namespace bmeh
