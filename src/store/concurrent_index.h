// ConcurrentIndex: a thread-safe facade over any MultiKeyIndex.
//
// The 1986 structures are single-writer by design; this wrapper makes
// them usable from threaded services with the standard coarse-grained
// recipe: a reader-writer lock, shared for Search/RangeSearch, exclusive
// for Insert/Delete.  Exact-match reads are short (height + 1 probes),
// so a shared mutex is the right grain for read-mostly workloads; finer
// grained latching (per node, crabbing) is future work and would follow
// the B-link discipline.

#ifndef BMEH_STORE_CONCURRENT_INDEX_H_
#define BMEH_STORE_CONCURRENT_INDEX_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "src/hashdir/multikey_index.h"

namespace bmeh {

/// \brief Reader-writer-locked wrapper around a MultiKeyIndex.
class ConcurrentIndex {
 public:
  /// \brief Takes ownership of `index`.
  explicit ConcurrentIndex(std::unique_ptr<MultiKeyIndex> index)
      : index_(std::move(index)) {
    BMEH_CHECK(index_ != nullptr);
  }

  Status Insert(const PseudoKey& key, uint64_t payload) {
    std::unique_lock lock(mutex_);
    return index_->Insert(key, payload);
  }

  Result<uint64_t> Search(const PseudoKey& key) {
    std::shared_lock lock(mutex_);
    return index_->Search(key);
  }

  Status Delete(const PseudoKey& key) {
    std::unique_lock lock(mutex_);
    return index_->Delete(key);
  }

  Status RangeSearch(const RangePredicate& pred, std::vector<Record>* out) {
    std::shared_lock lock(mutex_);
    return index_->RangeSearch(pred, out);
  }

  IndexStructureStats Stats() const {
    std::shared_lock lock(mutex_);
    return index_->Stats();
  }

  Status Validate() const {
    std::shared_lock lock(mutex_);
    return index_->Validate();
  }

  const KeySchema& schema() const { return index_->schema(); }

 private:
  // Note: Search() mutates the underlying I/O counters, which is benign
  // under a shared lock for correctness of *results*; the counters
  // themselves are only read single-threaded in tests and benches.
  mutable std::shared_mutex mutex_;
  std::unique_ptr<MultiKeyIndex> index_;
};

}  // namespace bmeh

#endif  // BMEH_STORE_CONCURRENT_INDEX_H_
