// ConcurrentIndex: a thread-safe facade over any MultiKeyIndex.
//
// The 1986 structures are single-writer by design; this wrapper makes
// them usable from threaded services with the standard coarse-grained
// recipe: a reader-writer lock, shared for Search/RangeSearch, exclusive
// for Insert/Delete.  Exact-match reads are short (height + 1 probes),
// so a shared mutex is the right grain for read-mostly workloads; finer
// grained latching (per node, crabbing) is future work and would follow
// the B-link discipline.
//
// Observability: construct with a MetricsRegistry to get per-operation
// counters (`index_*_total`) and latency histograms (`search_latency_ns`,
// `insert_latency_ns`, `delete_latency_ns`, `range_latency_ns`) charged
// around every call, plus a sampled source for the structure stats and
// the logical I/O counters.  Charging is lock-free (see src/obs), so it
// adds no contention to the reader path; with no registry every site
// costs one branch.

#ifndef BMEH_STORE_CONCURRENT_INDEX_H_
#define BMEH_STORE_CONCURRENT_INDEX_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "src/hashdir/multikey_index.h"
#include "src/obs/metrics.h"

namespace bmeh {

/// \brief Reader-writer-locked wrapper around a MultiKeyIndex.
class ConcurrentIndex {
 public:
  /// \brief Takes ownership of `index`.  `metrics` (optional) must
  /// outlive this object.
  explicit ConcurrentIndex(std::unique_ptr<MultiKeyIndex> index,
                           obs::MetricsRegistry* metrics = nullptr)
      : index_(std::move(index)) {
    BMEH_CHECK(index_ != nullptr);
    if (metrics != nullptr) {
      metrics_ = metrics;
      inserts_ = metrics->GetCounter("index_inserts_total");
      searches_ = metrics->GetCounter("index_searches_total");
      deletes_ = metrics->GetCounter("index_deletes_total");
      ranges_ = metrics->GetCounter("index_ranges_total");
      insert_latency_ = metrics->GetHistogram("insert_latency_ns");
      search_latency_ = metrics->GetHistogram("search_latency_ns");
      delete_latency_ = metrics->GetHistogram("delete_latency_ns");
      range_latency_ = metrics->GetHistogram("range_latency_ns");
      metrics_source_ = metrics->AddSource([this](obs::RegistrySnapshot* s) {
        const IndexStructureStats stats = Stats();  // takes the shared lock
        s->gauges["index_records"] = static_cast<int64_t>(stats.records);
        s->gauges["index_data_pages"] =
            static_cast<int64_t>(stats.data_pages);
        s->gauges["index_directory_nodes"] =
            static_cast<int64_t>(stats.directory_nodes);
        s->gauges["index_directory_entries"] =
            static_cast<int64_t>(stats.directory_entries);
        s->gauges["index_directory_levels"] =
            static_cast<int64_t>(stats.directory_levels);
        const IoStats io = index_->io()->stats();
        s->counters["logical_dir_reads_total"] = io.dir_reads;
        s->counters["logical_dir_writes_total"] = io.dir_writes;
        s->counters["logical_data_reads_total"] = io.data_reads;
        s->counters["logical_data_writes_total"] = io.data_writes;
      });
    }
  }

  ~ConcurrentIndex() {
    if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
  }

  ConcurrentIndex(const ConcurrentIndex&) = delete;
  ConcurrentIndex& operator=(const ConcurrentIndex&) = delete;

  Status Insert(const PseudoKey& key, uint64_t payload) {
    if (inserts_ != nullptr) inserts_->Inc();
    obs::ScopedLatency timer(insert_latency_);
    std::unique_lock lock(mutex_);
    return index_->Insert(key, payload);
  }

  /// \brief Inserts every record under ONE exclusive-lock acquisition —
  /// the batched write path's answer to paying per-record lock traffic.
  /// Records are attempted in order and all of them are tried; the first
  /// non-OK status (e.g. AlreadyExists on a duplicate) is returned.  No
  /// rollback: like N consecutive Insert() calls, minus N-1 lock round
  /// trips and with no other writer interleaved inside the batch.
  Status InsertBatch(std::span<const Record> records) {
    if (inserts_ != nullptr) inserts_->Inc(records.size());
    obs::ScopedLatency timer(insert_latency_);
    std::unique_lock lock(mutex_);
    Status first;
    for (const Record& rec : records) {
      Status st = index_->Insert(rec.key, rec.payload);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  Result<uint64_t> Search(const PseudoKey& key) {
    if (searches_ != nullptr) searches_->Inc();
    obs::ScopedLatency timer(search_latency_);
    std::shared_lock lock(mutex_);
    return index_->Search(key);
  }

  Status Delete(const PseudoKey& key) {
    if (deletes_ != nullptr) deletes_->Inc();
    obs::ScopedLatency timer(delete_latency_);
    std::unique_lock lock(mutex_);
    return index_->Delete(key);
  }

  /// \brief Deletes every key under one exclusive-lock acquisition.  Same
  /// contract as InsertBatch: all keys attempted in order, first non-OK
  /// status (e.g. KeyError on a missing key) returned, no rollback.
  Status DeleteBatch(std::span<const PseudoKey> keys) {
    if (deletes_ != nullptr) deletes_->Inc(keys.size());
    obs::ScopedLatency timer(delete_latency_);
    std::unique_lock lock(mutex_);
    Status first;
    for (const PseudoKey& key : keys) {
      Status st = index_->Delete(key);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  Status RangeSearch(const RangePredicate& pred, std::vector<Record>* out) {
    if (ranges_ != nullptr) ranges_->Inc();
    obs::ScopedLatency timer(range_latency_);
    std::shared_lock lock(mutex_);
    return index_->RangeSearch(pred, out);
  }

  IndexStructureStats Stats() const {
    std::shared_lock lock(mutex_);
    return index_->Stats();
  }

  Status Validate() const {
    std::shared_lock lock(mutex_);
    return index_->Validate();
  }

  const KeySchema& schema() const { return index_->schema(); }

 private:
  // Note: Search() mutates the underlying I/O counters, which is benign
  // under a shared lock because IoCounter is atomic; the registry source
  // above snapshots them from any thread.
  mutable std::shared_mutex mutex_;
  std::unique_ptr<MultiKeyIndex> index_;
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* searches_ = nullptr;
  obs::Counter* deletes_ = nullptr;
  obs::Counter* ranges_ = nullptr;
  obs::Histogram* insert_latency_ = nullptr;
  obs::Histogram* search_latency_ = nullptr;
  obs::Histogram* delete_latency_ = nullptr;
  obs::Histogram* range_latency_ = nullptr;
};

}  // namespace bmeh

#endif  // BMEH_STORE_CONCURRENT_INDEX_H_
