// ConcurrentIndex: a thread-safe facade over any MultiKeyIndex.
//
// The 1986 structures are single-writer by design; this wrapper makes
// them usable from threaded services.  Writers always serialize on an
// exclusive lock.  Readers come in two flavors:
//  * the classic coarse-grained recipe — shared lock for Search and
//    RangeSearch — for any MultiKeyIndex;
//  * an optimistic lock-free path (default, BMEH-tree only): descend the
//    published structure validating slot version words (even = stable,
//    odd = write in progress), retry on conflict with bounded backoff,
//    and fall back to the shared lock if contention persists.  Replaced
//    nodes are retired through epoch-based reclamation, so readers never
//    touch freed memory.  See arena.h / bmeh_olc_read.cc for the
//    protocol and DESIGN.md §13 for the proof sketch.
// The remaining locked path is write-preferring (same discipline as
// BmehStore): mutators raise writers_pending_ for their whole exclusive
// tenure and locked readers back off on capped timed sleeps, so fallback
// churn can neither starve writers (glibc's rwlock prefers readers) nor
// stage a futex thundering herd at release time.
//
// Observability: construct with a MetricsRegistry to get per-operation
// counters (`index_*_total`, plus `index_read_retries_total` and
// `index_read_fallbacks_total` for the optimistic path) and latency
// histograms (`search_latency_ns`, `insert_latency_ns`,
// `delete_latency_ns`, `range_latency_ns`, and the retried-read splits
// `search_retried_latency_ns` / `range_retried_latency_ns`) charged
// around every call, plus a sampled source for the structure stats and
// the logical I/O counters.  The source samples through the epoch guard
// with version validation — never through the writer-view accessors —
// so snapshots stay safe alongside lock-free readers and one writer.

#ifndef BMEH_STORE_CONCURRENT_INDEX_H_
#define BMEH_STORE_CONCURRENT_INDEX_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/epoch.h"
#include "src/core/bmeh_tree.h"
#include "src/hashdir/multikey_index.h"
#include "src/obs/metrics.h"

namespace bmeh {

/// \brief Thread-safe wrapper around a MultiKeyIndex (see file comment).
class ConcurrentIndex {
 public:
  /// Optimistic-read retry tuning: a conflict means a writer published
  /// mid-descent, which lasts microseconds, so retries are quick and the
  /// shared-lock fallback is only for pathological churn.
  static constexpr int kReadAttempts = 4;

  /// \brief Takes ownership of `index`.  `metrics` (optional) must
  /// outlive this object.  `optimistic_reads` enables the lock-free read
  /// path when the index is a BmehTree (ignored otherwise).
  explicit ConcurrentIndex(std::unique_ptr<MultiKeyIndex> index,
                           obs::MetricsRegistry* metrics = nullptr,
                           bool optimistic_reads = true)
      : index_(std::move(index)) {
    BMEH_CHECK(index_ != nullptr);
    if (optimistic_reads) {
      auto* tree = dynamic_cast<BmehTree*>(index_.get());
      if (tree != nullptr && !tree->degraded()) {
        epoch_ = epoch::EpochManager::Global();
        if (!tree->concurrent_reads_enabled()) {
          tree->EnableConcurrentReads(epoch_);
        }
        tree_olc_ = tree;
      }
    }
    if (metrics != nullptr) {
      metrics_ = metrics;
      inserts_ = metrics->GetCounter("index_inserts_total");
      searches_ = metrics->GetCounter("index_searches_total");
      deletes_ = metrics->GetCounter("index_deletes_total");
      ranges_ = metrics->GetCounter("index_ranges_total");
      read_retries_ = metrics->GetCounter("index_read_retries_total");
      read_fallbacks_ = metrics->GetCounter("index_read_fallbacks_total");
      insert_latency_ = metrics->GetHistogram("insert_latency_ns");
      search_latency_ = metrics->GetHistogram("search_latency_ns");
      delete_latency_ = metrics->GetHistogram("delete_latency_ns");
      range_latency_ = metrics->GetHistogram("range_latency_ns");
      search_retried_latency_ =
          metrics->GetHistogram("search_retried_latency_ns");
      range_retried_latency_ =
          metrics->GetHistogram("range_retried_latency_ns");
      metrics_source_ = metrics->AddSource([this](obs::RegistrySnapshot* s) {
        IndexStructureStats stats;
        SampleStatsForMetrics(&stats);
        s->gauges["index_records"] = static_cast<int64_t>(stats.records);
        s->gauges["index_data_pages"] =
            static_cast<int64_t>(stats.data_pages);
        s->gauges["index_directory_nodes"] =
            static_cast<int64_t>(stats.directory_nodes);
        s->gauges["index_directory_entries"] =
            static_cast<int64_t>(stats.directory_entries);
        s->gauges["index_directory_levels"] =
            static_cast<int64_t>(stats.directory_levels);
        const IoStats io = index_->io()->stats();
        s->counters["logical_dir_reads_total"] = io.dir_reads;
        s->counters["logical_dir_writes_total"] = io.dir_writes;
        s->counters["logical_data_reads_total"] = io.data_reads;
        s->counters["logical_data_writes_total"] = io.data_writes;
      });
    }
  }

  ~ConcurrentIndex() {
    if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
  }

  ConcurrentIndex(const ConcurrentIndex&) = delete;
  ConcurrentIndex& operator=(const ConcurrentIndex&) = delete;

  Status Insert(const PseudoKey& key, uint64_t payload) {
    if (inserts_ != nullptr) inserts_->Inc();
    obs::ScopedLatency timer(insert_latency_);
    auto lock = LockExclusive();
    return index_->Insert(key, payload);
  }

  /// \brief Inserts every record under ONE exclusive-lock acquisition —
  /// the batched write path's answer to paying per-record lock traffic.
  /// Records are attempted in order and all of them are tried; the first
  /// non-OK status (e.g. AlreadyExists on a duplicate) is returned.  No
  /// rollback: like N consecutive Insert() calls, minus N-1 lock round
  /// trips and with no other writer interleaved inside the batch.
  Status InsertBatch(std::span<const Record> records) {
    if (inserts_ != nullptr) inserts_->Inc(records.size());
    obs::ScopedLatency timer(insert_latency_);
    auto lock = LockExclusive();
    Status first;
    for (const Record& rec : records) {
      Status st = index_->Insert(rec.key, rec.payload);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  Result<uint64_t> Search(const PseudoKey& key) {
    if (searches_ != nullptr) searches_->Inc();
    obs::ScopedLatency timer(search_latency_);
    if (tree_olc_ != nullptr) {
      // Conflict-free pass reads no clock and touches no shared state;
      // retry bookkeeping materializes on first conflict.
      std::optional<Backoff> backoff;
      uint64_t t0 = 0;
      for (int attempt = 0;;) {
        bool conflict = false;
        bool unpinned = false;
        Result<uint64_t> r = [&]() -> Result<uint64_t> {
          epoch::Guard g(epoch_);
          if (!g.pinned()) {
            // All epoch reader slots taken: no reclamation protection, so
            // the optimistic descent is unsafe.  Take the locked path.
            unpinned = true;
            return Status::Unavailable("epoch reader slots exhausted");
          }
          return tree_olc_->SearchOptimistic(key, &conflict);
        }();
        if (unpinned) break;
        if (!conflict) {
          if (attempt > 0 && search_retried_latency_ != nullptr) {
            search_retried_latency_->Record(obs::MonotonicNanos() - t0);
          }
          return r;
        }
        if (read_retries_ != nullptr) read_retries_->Inc();
        if (++attempt >= kReadAttempts) break;
        if (!backoff.has_value()) {
          if (search_retried_latency_ != nullptr) t0 = obs::MonotonicNanos();
          backoff.emplace(ReadRetryPolicy(), NextBackoffSeed());
        }
        SleepUs(backoff->NextDelayUs());  // Outside the guard.
      }
      if (read_fallbacks_ != nullptr) read_fallbacks_->Inc();
    }
    auto lock = LockShared();
    return index_->Search(key);
  }

  Status Delete(const PseudoKey& key) {
    if (deletes_ != nullptr) deletes_->Inc();
    obs::ScopedLatency timer(delete_latency_);
    auto lock = LockExclusive();
    return index_->Delete(key);
  }

  /// \brief Deletes every key under one exclusive-lock acquisition.  Same
  /// contract as InsertBatch: all keys attempted in order, first non-OK
  /// status (e.g. KeyError on a missing key) returned, no rollback.
  Status DeleteBatch(std::span<const PseudoKey> keys) {
    if (deletes_ != nullptr) deletes_->Inc(keys.size());
    obs::ScopedLatency timer(delete_latency_);
    auto lock = LockExclusive();
    Status first;
    for (const PseudoKey& key : keys) {
      Status st = index_->Delete(key);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    return first;
  }

  Status RangeSearch(const RangePredicate& pred, std::vector<Record>* out) {
    if (ranges_ != nullptr) ranges_->Inc();
    obs::ScopedLatency timer(range_latency_);
    if (tree_olc_ != nullptr) {
      std::optional<Backoff> backoff;
      uint64_t t0 = 0;
      for (int attempt = 0;;) {
        bool conflict = false;
        bool unpinned = false;
        Status st = [&] {
          epoch::Guard g(epoch_);
          if (!g.pinned()) {  // Slots exhausted: take the locked path.
            unpinned = true;
            return Status::Unavailable("epoch reader slots exhausted");
          }
          return tree_olc_->RangeSearchOptimistic(pred, out, &conflict);
        }();
        if (unpinned) break;
        if (!conflict) {
          if (attempt > 0 && range_retried_latency_ != nullptr) {
            range_retried_latency_->Record(obs::MonotonicNanos() - t0);
          }
          return st;
        }
        if (read_retries_ != nullptr) read_retries_->Inc();
        if (++attempt >= kReadAttempts) break;
        if (!backoff.has_value()) {
          if (range_retried_latency_ != nullptr) t0 = obs::MonotonicNanos();
          backoff.emplace(ReadRetryPolicy(), NextBackoffSeed());
        }
        SleepUs(backoff->NextDelayUs());
      }
      if (read_fallbacks_ != nullptr) read_fallbacks_->Inc();
    }
    auto lock = LockShared();
    return index_->RangeSearch(pred, out);
  }

  IndexStructureStats Stats() const {
    auto lock = LockShared();
    return index_->Stats();
  }

  Status Validate() const {
    auto lock = LockShared();
    return index_->Validate();
  }

  const KeySchema& schema() const { return index_->schema(); }

  /// \brief True when reads go through the lock-free path.
  bool optimistic_reads_enabled() const { return tree_olc_ != nullptr; }

 private:
  /// RAII exclusive hold of mutex_ that keeps writers_pending_ raised for
  /// the writer's whole tenure — acquisition wait AND hold — mirroring
  /// BmehStore's write-preferring gate: glibc's rwlock prefers readers,
  /// so a stream of shared-lock fallback readers could otherwise starve
  /// writers indefinitely and pile up parked on the rwlock futex (whose
  /// release then wakes the whole crowd before the writer can continue).
  /// Only ever constructed as a prvalue from LockExclusive().
  class ExclusiveLock {
   public:
    explicit ExclusiveLock(const ConcurrentIndex* c) : c_(c) {
      c_->writers_pending_.fetch_add(1, std::memory_order_acquire);
      lock_ = std::unique_lock<std::shared_mutex>(c_->mutex_);
    }
    ~ExclusiveLock() {
      lock_.unlock();
      c_->writers_pending_.fetch_sub(1, std::memory_order_release);
    }
    ExclusiveLock(ExclusiveLock&&) = delete;

   private:
    const ConcurrentIndex* c_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  ExclusiveLock LockExclusive() const { return ExclusiveLock(this); }

  /// Write-preferring shared acquisition: back off on short capped timed
  /// sleeps while any mutator is waiting or holding, so readers neither
  /// starve writers nor park on the rwlock futex.  No livelock: the gate
  /// drops the moment the last pending mutator releases.
  std::shared_lock<std::shared_mutex> LockShared() const {
    uint64_t park_us = 10;
    while (writers_pending_.load(std::memory_order_acquire) > 0) {
      SleepUs(park_us);
      park_us = std::min<uint64_t>(park_us * 2, 1000);
    }
    return std::shared_lock<std::shared_mutex>(mutex_);
  }

  static BackoffPolicy ReadRetryPolicy() {
    BackoffPolicy p;
    p.max_attempts = kReadAttempts;
    p.base_delay_us = 1;
    p.max_delay_us = 100;
    p.total_budget_us = 1000;
    return p;
  }

  uint64_t NextBackoffSeed() {
    return backoff_seed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tree-shape sample for the metrics source.  With the lock-free path
  /// on, this must NOT use the writer-view accessors: a concurrent
  /// mutation's copy-on-write scope would race the sampler.  Sample the
  /// published (immutable) structure under the epoch guard and version
  /// validation, falling back to the locked Stats() if a commit keeps
  /// interleaving.
  void SampleStatsForMetrics(IndexStructureStats* out) const {
    if (tree_olc_ != nullptr) {
      epoch::Guard g(epoch_);
      for (int attempt = 0; g.pinned() && attempt < kReadAttempts;
           ++attempt) {
        if (tree_olc_->SampleStatsOptimistic(out)) return;
      }
    }
    *out = Stats();
  }

  // Note: Search() mutates the underlying I/O counters, which is benign
  // from any thread because IoCounter is atomic; the registry source
  // above snapshots them likewise.
  mutable std::shared_mutex mutex_;
  mutable std::atomic<int> writers_pending_{0};
  std::unique_ptr<MultiKeyIndex> index_;
  BmehTree* tree_olc_ = nullptr;  // Non-null once lock-free reads are on.
  epoch::EpochManager* epoch_ = nullptr;
  std::atomic<uint64_t> backoff_seed_{0x9e3779b97f4a7c15ull};
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t metrics_source_ = 0;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* searches_ = nullptr;
  obs::Counter* deletes_ = nullptr;
  obs::Counter* ranges_ = nullptr;
  obs::Counter* read_retries_ = nullptr;
  obs::Counter* read_fallbacks_ = nullptr;
  obs::Histogram* insert_latency_ = nullptr;
  obs::Histogram* search_latency_ = nullptr;
  obs::Histogram* delete_latency_ = nullptr;
  obs::Histogram* range_latency_ = nullptr;
  obs::Histogram* search_retried_latency_ = nullptr;
  obs::Histogram* range_retried_latency_ = nullptr;
};

}  // namespace bmeh

#endif  // BMEH_STORE_CONCURRENT_INDEX_H_
