#include "src/store/sharded_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <queue>
#include <sstream>
#include <thread>

#include "src/common/crc32.h"
#include "src/obs/trace.h"

namespace bmeh {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "BMEH-SHARD v1";

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int Log2Exact(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

bool PathExists(const std::string& path, bool* is_dir) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  if (is_dir != nullptr) *is_dir = S_ISDIR(st.st_mode);
  return true;
}

bool DirectoryIsEmptyExcept(const std::string& path,
                            const std::string& ignore) {
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return false;
  bool empty = true;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != ".." && name != ignore) {
      empty = false;
      break;
    }
  }
  ::closedir(d);
  return empty;
}

bool DirectoryIsEmpty(const std::string& path) {
  return DirectoryIsEmptyExcept(path, std::string());
}

Status ValidateShardCount(int shards, const KeySchema& schema) {
  if (!IsPowerOfTwo(shards) || shards > 4096) {
    return Status::Invalid("shard count must be a power of two in [1, 4096], "
                           "got " + std::to_string(shards));
  }
  if (Log2Exact(shards) > schema.total_bits()) {
    return Status::Invalid("shard count " + std::to_string(shards) +
                           " needs more routing bits than the schema has (" +
                           std::to_string(schema.total_bits()) + ")");
  }
  return Status::OK();
}

/// The directory containing `path` ("." when `path` has no slash).
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int ShardRouter::ShardOf(const PseudoKey& key, const KeySchema& schema,
                         int shard_bits) {
  if (shard_bits <= 0) return 0;
  const int d = schema.dims();
  int out = 0;
  int got = 0;
  // Walk the interleaved ψ digit string (dimension round-robin, MSB
  // first) until the routing prefix is assembled; a dimension whose
  // width is exhausted contributes no digit in that round.
  for (int t = 0; got < shard_bits && t < d * 32; ++t) {
    const int j = t % d;
    const int i = t / d;
    const int w = schema.width(j);
    if (i >= w) continue;
    out = (out << 1) |
          static_cast<int>((key.component(j) >> (w - 1 - i)) & 1u);
    ++got;
  }
  return out;
}

bool ShardRouter::PsiLess(const PseudoKey& a, const PseudoKey& b,
                          const KeySchema& schema) {
  const int d = schema.dims();
  int max_w = 0;
  for (int j = 0; j < d; ++j) max_w = std::max(max_w, schema.width(j));
  for (int t = 0; t < d * max_w; ++t) {
    const int j = t % d;
    const int i = t / d;
    const int w = schema.width(j);
    if (i >= w) continue;
    const uint32_t ba = (a.component(j) >> (w - 1 - i)) & 1u;
    const uint32_t bb = (b.component(j) >> (w - 1 - i)) & 1u;
    if (ba != bb) return ba < bb;
  }
  return false;
}

std::string ShardedStore::ShardPath(const std::string& dir, int shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d.bmeh", shard_index);
  return dir + "/" + name;
}

Status ShardedStore::WriteManifest(const std::string& dir,
                                   const ShardManifest& manifest) {
  bool is_dir = false;
  if (!PathExists(dir, &is_dir)) {
    if (::mkdir(dir.c_str(), 0755) != 0) {
      return Status::IoError("cannot create " + dir + ": " +
                             std::strerror(errno));
    }
    // Persist the new directory's own entry: a crash right after store
    // creation must not lose the directory (and with it the manifest and
    // every shard file) from its parent.
    BMEH_RETURN_NOT_OK(SyncDirectory(ParentDir(dir)));
  } else if (!is_dir) {
    return Status::Invalid(dir + " exists and is not a directory");
  }
  std::string body = std::string(kManifestMagic) + "\n";
  body += "shards " + std::to_string(manifest.shards) + "\n";
  body += "shard_bits " + std::to_string(manifest.shard_bits) + "\n";
  body += "page_size " + std::to_string(manifest.page_size) + "\n";
  body += "dims " + std::to_string(manifest.schema.dims()) + "\n";
  body += "widths";
  for (int j = 0; j < manifest.schema.dims(); ++j) {
    body += " " + std::to_string(manifest.schema.width(j));
  }
  body += "\n";
  char seal[32];
  std::snprintf(seal, sizeof(seal), "crc %08x\n",
                Crc32(body.data(), body.size()));
  body += seal;

  // Write-temp-then-rename so a crash never leaves a half-written
  // manifest where Open() would read it.
  const std::string final_path = dir + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot write " + tmp_path);
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) ==
                     body.size();
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish " + final_path + ": " +
                           std::strerror(errno));
  }
  // The rename is not durable until the directory itself is synced; a
  // failure here is a real durability failure, not advisory.
  return SyncDirectory(dir);
}

Result<ShardManifest> ShardedStore::ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::string text;
  char buf[512];
  size_t k;
  while ((k = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, k);
  std::fclose(f);

  const size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::Corruption("manifest missing its crc seal: " + path);
  }
  uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &want) != 1) {
    return Status::Corruption("manifest crc seal unreadable: " + path);
  }
  if (Crc32(text.data(), crc_pos) != want) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::Corruption("not a sharded store manifest: " + path);
  }
  ShardManifest m;
  int dims = 0;
  std::vector<int> widths;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (name == "shards") {
      fields >> m.shards;
    } else if (name == "shard_bits") {
      fields >> m.shard_bits;
    } else if (name == "page_size") {
      fields >> m.page_size;
    } else if (name == "dims") {
      fields >> dims;
    } else if (name == "widths") {
      int w;
      while (fields >> w) widths.push_back(w);
    }
    // Unknown fields are ignored: the crc seals them, and a newer writer
    // may add informational lines an older reader can skip.
  }
  if (!IsPowerOfTwo(m.shards) || m.shard_bits != Log2Exact(m.shards) ||
      m.page_size <= 0 || dims <= 0 || dims > kMaxDims ||
      static_cast<int>(widths.size()) != dims) {
    return Status::Corruption("manifest fields inconsistent: " + path);
  }
  m.schema = KeySchema(std::span<const int>(widths.data(), widths.size()));
  return m;
}

bool ShardedStore::IsShardedDir(const std::string& path) {
  bool is_dir = false;
  if (!PathExists(path, &is_dir) || !is_dir) return false;
  return ReadManifest(path).ok();
}

ShardedStore::ShardedStore(std::vector<std::unique_ptr<StorageUnit>> units,
                           int shard_bits, const ShardedStoreOptions& options)
    : units_(std::move(units)),
      shard_bits_(shard_bits),
      schema_(options.store.schema),
      retry_(options.retry),
      tracer_(options.store.tracer),
      oplog_(options.store.oplog),
      watchdog_(options.store.watchdog),
      watchdog_deadline_ms_(options.store.watchdog_deadline_ms) {
  if (options.store.metrics == nullptr) return;
  metrics_ = options.store.metrics;
  retries_total_ = metrics_->GetCounter("store_shard_retries_total");
  unavailable_total_ = metrics_->GetCounter("store_shard_unavailable_total");
  repairs_total_ = metrics_->GetCounter("store_shard_repairs_total");
  backoff_ns_ = metrics_->GetHistogram("store_retry_backoff_ns");
  // Aggregate sampled state under the unlabeled names a single store
  // publishes, so dashboards (and the CLI greps) keep working against a
  // sharded store; the per-shard breakdown is what the units publish
  // under their "shard<k>_" labels.
  metrics_source_ = metrics_->AddSource([this](obs::RegistrySnapshot* s) {
    uint64_t records = 0, wal = 0, dirty = 0;
    int64_t height = 0, down = 0;
    for (size_t k = 0; k < units_.size(); ++k) {
      StorageUnit::Ref ref = units_[k]->Acquire();
      s->gauges[StorageUnit::MetricsLabel(static_cast<int>(k)) + "up"] =
          ref ? 1 : 0;
      if (!ref) {
        ++down;
        continue;
      }
      const BmehStore::SampledState st = ref->SampleStateForMetrics();
      records += st.records;
      wal += st.wal_records;
      dirty += st.dirty_ops;
      height = std::max<int64_t>(height, st.height);
    }
    s->gauges["store_shards"] = static_cast<int64_t>(units_.size());
    s->gauges["store_shards_down"] = down;
    s->gauges["tree_records"] = static_cast<int64_t>(records);
    s->gauges["tree_height"] = height;
    s->gauges["wal_records"] = static_cast<int64_t>(wal);
    s->gauges["store_dirty_ops"] = static_cast<int64_t>(dirty);
  });
}

ShardedStore::~ShardedStore() {
  // The source samples the units; detach it before they die.  The units
  // then close one by one, each folding its WAL into a final per-shard
  // checkpoint exactly as a standalone store would.
  if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::OpenUnits(
    const std::string& dir, int shards, const ShardedStoreOptions& options) {
  const int n = shards;
  std::vector<std::unique_ptr<StorageUnit>> units(n);
  std::vector<Status> statuses(n, Status::OK());
  auto open_one = [&](int i) {
    auto r = StorageUnit::Open(i, ShardPath(dir, i), options.store);
    if (r.ok()) {
      units[i] = std::move(r).ValueOrDie();
    } else {
      statuses[i] = r.status();
    }
  };
  if (n == 1) {
    open_one(0);
  } else {
    // Parallel recovery: every shard replays its own WAL (and rebuilds
    // its own free list) on its own thread.  The units share nothing but
    // the mutex-guarded metrics registry, so concurrent opens are safe.
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (int i = 0; i < n; ++i) workers.emplace_back(open_one, i);
    for (auto& w : workers) w.join();
  }
  int failed = 0;
  int first_failed = -1;
  for (int i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      ++failed;
      if (first_failed < 0) first_failed = i;
    }
  }
  if (failed > 0 &&
      (options.open_policy == OpenPolicy::kStrict || failed == n)) {
    // Strict (or nothing at all came up): a failed open must not mutate
    // shard files — poison the units that did open so their destructors
    // skip the close-time checkpoint.
    for (auto& u : units) {
      if (u != nullptr && u->store() != nullptr) {
        u->store()->SimulateCrashForTesting();
      }
    }
    return Status(statuses[first_failed].code(),
                  "shard " + std::to_string(first_failed) + ": " +
                      statuses[first_failed].message());
  }
  // Partial availability: keep a down placeholder per failed shard so
  // routing, health reporting, and RepairShard all have a target while
  // the healthy shards serve.
  for (int i = 0; i < n; ++i) {
    if (units[i] == nullptr) {
      units[i] = StorageUnit::Down(
          i, ShardPath(dir, i), options.store,
          Status(statuses[i].code(), "open failed: " + statuses[i].message()));
    }
  }
  return std::unique_ptr<ShardedStore>(
      new ShardedStore(std::move(units), Log2Exact(n), options));
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& dir, const ShardedStoreOptions& options) {
  bool is_dir = false;
  const bool exists = PathExists(dir, &is_dir);
  if (exists && !is_dir) {
    return Status::Invalid(dir + " is not a sharded store directory");
  }
  ShardManifest manifest;
  const bool have_manifest = exists && PathExists(dir + "/" + kManifestName,
                                                  nullptr);
  if (!have_manifest) {
    // Never create a fresh store on top of existing files: a directory
    // holding shard files but no readable manifest is debris (a restore
    // or creation killed midway), and adopting part of it would silently
    // serve a fraction of the data as if it were all of it.  Our own
    // create-crash leftover, a lone MANIFEST.tmp, is safe to overwrite.
    if (exists &&
        !DirectoryIsEmptyExcept(dir, std::string(kManifestName) + ".tmp")) {
      return Status::AlreadyExists(
          dir + " contains files but no readable manifest; refusing to "
                "create a fresh store over them");
    }
    // Fresh store: fix the routing contract and seal it in the manifest
    // before any shard file exists.
    manifest.shards = options.shards == 0 ? 1 : options.shards;
    BMEH_RETURN_NOT_OK(
        ValidateShardCount(manifest.shards, options.store.schema));
    manifest.shard_bits = Log2Exact(manifest.shards);
    manifest.page_size = options.store.page_size;
    manifest.schema = options.store.schema;
    BMEH_RETURN_NOT_OK(WriteManifest(dir, manifest));
  } else {
    BMEH_ASSIGN_OR_RETURN(manifest, ReadManifest(dir));
    if (options.shards != 0 && options.shards != manifest.shards) {
      return Status::Invalid(
          "shard count mismatch: directory has " +
          std::to_string(manifest.shards) + " shards, caller expects " +
          std::to_string(options.shards));
    }
    if (!(manifest.schema == options.store.schema)) {
      return Status::Invalid("schema mismatch: sharded store has " +
                             manifest.schema.ToString() + ", caller expects " +
                             options.store.schema.ToString());
    }
  }
  ShardedStoreOptions fixed = options;
  fixed.store.page_size = manifest.page_size;
  return OpenUnits(dir, manifest.shards, fixed);
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    std::vector<std::unique_ptr<PageStore>> devices,
    const ShardedStoreOptions& options) {
  const int n = static_cast<int>(devices.size());
  BMEH_RETURN_NOT_OK(ValidateShardCount(n, options.store.schema));
  if (options.shards != 0 && options.shards != n) {
    return Status::Invalid("options.shards disagrees with the device count");
  }
  std::vector<std::unique_ptr<StorageUnit>> units(n);
  std::vector<Status> statuses(n, Status::OK());
  for (int i = 0; i < n; ++i) {
    auto r = StorageUnit::Open(i, std::move(devices[i]), options.store);
    if (r.ok()) {
      units[i] = std::move(r).ValueOrDie();
    } else {
      statuses[i] = r.status();
    }
  }
  int failed = 0;
  int first_failed = -1;
  for (int i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      ++failed;
      if (first_failed < 0) first_failed = i;
    }
  }
  if (failed > 0 &&
      (options.open_policy == OpenPolicy::kStrict || failed == n)) {
    for (auto& u : units) {
      if (u != nullptr && u->store() != nullptr) {
        u->store()->SimulateCrashForTesting();
      }
    }
    return Status(statuses[first_failed].code(),
                  "shard " + std::to_string(first_failed) + ": " +
                      statuses[first_failed].message());
  }
  for (int i = 0; i < n; ++i) {
    if (units[i] == nullptr) {
      // A device-backed down unit has no path, so it cannot be repaired —
      // but the siblings still serve, and routing stays honest.
      units[i] = StorageUnit::Down(
          i, std::string(), options.store,
          Status(statuses[i].code(), "open failed: " + statuses[i].message()));
    }
  }
  return std::unique_ptr<ShardedStore>(
      new ShardedStore(std::move(units), Log2Exact(n), options));
}

Result<ShardedStoreInfo> ShardedStore::Inspect(const std::string& dir) {
  BMEH_ASSIGN_OR_RETURN(const ShardManifest manifest, ReadManifest(dir));
  ShardedStoreInfo info;
  info.shards = manifest.shards;
  info.shard_bits = manifest.shard_bits;
  info.page_size = manifest.page_size;
  info.shard.reserve(manifest.shards);
  info.shard_status.reserve(manifest.shards);
  for (int i = 0; i < manifest.shards; ++i) {
    auto r = BmehStore::Inspect(ShardPath(dir, i));
    if (!r.ok()) {
      // One unreadable shard must not hide the health of its siblings:
      // record the failure per shard and keep inspecting.
      info.shard.emplace_back();
      info.shard_status.push_back(
          Status(r.status().code(), "shard " + std::to_string(i) + ": " +
                                        r.status().message()));
      ++info.down_shards;
      continue;
    }
    info.records += r->records;
    info.wal_records += r->wal_records;
    info.page_count += r->page_count;
    info.shard.push_back(*r);
    info.shard_status.push_back(Status::OK());
  }
  return info;
}

uint64_t ShardedStore::NextRetrySeed(int s) {
  return SplitMix64(retry_seq_.fetch_add(1, std::memory_order_relaxed) +
                    (static_cast<uint64_t>(s) << 32));
}

Status ShardedStore::RunWithRetry(int s,
                                  const std::function<Status(BmehStore*)>& op) {
  Backoff backoff(retry_, NextRetrySeed(s));
  uint32_t retries = 0;
  uint64_t backoff_total_ns = 0;
  for (;;) {
    Status st;
    {
      StorageUnit::Ref ref = units_[s]->Acquire();
      if (ref) {
        st = op(ref.get());
      } else {
        st = Status::Unavailable("shard " + std::to_string(s) +
                                 " is unavailable: " +
                                 units_[s]->down_reason().message());
        if (unavailable_total_ != nullptr) unavailable_total_->Inc();
      }
    }
    // The Ref (and its shared lock) is released before any sleep: a
    // repair must never wait on a sleeping retrier.
    if (!backoff.ShouldRetry(st)) {
      if (retries > 0 && oplog_ != nullptr) {
        // One wide event for the whole retry episode — how many attempts
        // the op consumed and what it ultimately resolved to.
        obs::WideEvent ev;
        ev.trace_id = obs::NextTraceId();
        ev.op = "shard_retry";
        ev.shard = s;
        ev.status = StatusCodeName(st.code());
        ev.retries = retries;
        ev.latency_ns = backoff_total_ns;
        oplog_->Record(ev);
      }
      return st;
    }
    const uint64_t delay_us = backoff.NextDelayUs();
    ++retries;
    if (retries_total_ != nullptr) retries_total_->Inc();
    {
      obs::TraceSpan span(tracer_, "shard_retry_backoff", "store");
      SleepUs(delay_us);
    }
    backoff_total_ns += delay_us * 1000;
    if (backoff_ns_ != nullptr) backoff_ns_->Record(delay_us * 1000);
  }
}

Status ShardedStore::Put(const PseudoKey& key, uint64_t payload) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  return RunWithRetry(ShardOf(key), [&](BmehStore* store) {
    return store->Put(key, payload);
  });
}

Result<uint64_t> ShardedStore::Get(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  uint64_t value = 0;
  BMEH_RETURN_NOT_OK(RunWithRetry(ShardOf(key), [&](BmehStore* store) {
    auto r = store->Get(key);
    if (!r.ok()) return r.status();
    value = r.ValueOrDie();
    return Status::OK();
  }));
  return value;
}

Status ShardedStore::Delete(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  return RunWithRetry(ShardOf(key), [&](BmehStore* store) {
    return store->Delete(key);
  });
}

Status ShardedStore::Write(const WriteBatch& batch,
                           std::vector<Status>* per_record) {
  const std::vector<Wal::LogRecord>& recs = batch.records();
  std::vector<Status> local;
  std::vector<Status>& statuses = per_record != nullptr ? *per_record : local;
  statuses.assign(recs.size(), Status::OK());
  if (recs.empty()) return Status::OK();

  // Validate every key before anything is routed: a malformed key fails
  // the whole batch with nothing written on any shard — the same
  // up-front contract as the single-store batch path.
  for (const Wal::LogRecord& rec : recs) {
    const Status st = schema_.Validate(rec.key);
    if (!st.ok()) {
      statuses.assign(recs.size(), st);
      return st;
    }
  }

  // Split into per-shard sub-batches, preserving the caller's relative
  // order within each shard (a duplicate key always lands on one shard,
  // so per-shard order is all that per-record outcomes depend on).
  std::vector<WriteBatch> sub(units_.size());
  std::vector<std::vector<size_t>> origin(units_.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const int s = ShardOf(recs[i].key);
    if (recs[i].op == Wal::kOpInsert) {
      sub[s].Put(recs[i].key, recs[i].payload);
    } else {
      sub[s].Delete(recs[i].key);
    }
    origin[s].push_back(i);
  }

  // Each sub-batch commits independently with single-store atomicity
  // (one WAL chain, one fsync, all-or-nothing on crash).  There is no
  // cross-shard transaction: a shard that refuses its sub-batch leaves
  // sibling commits standing, and the per-record statuses say which.
  // Transient refusals (quota, shard mid-repair) retry the whole
  // sub-batch — safe because a transient batch failure is fully rolled
  // back on the shard.
  for (size_t s = 0; s < units_.size(); ++s) {
    if (sub[s].empty()) continue;
    std::vector<Status> sub_statuses;
    const Status st = RunWithRetry(static_cast<int>(s), [&](BmehStore* store) {
      return store->Write(sub[s], &sub_statuses);
    });
    if (st.IsUnavailable() || sub_statuses.size() != origin[s].size()) {
      // The sub-batch never reached a live shard (or the shard died
      // before reporting): every member shares the routing-level status.
      for (const size_t idx : origin[s]) statuses[idx] = st;
      continue;
    }
    for (size_t k = 0; k < sub_statuses.size(); ++k) {
      statuses[origin[s][k]] = sub_statuses[k];
    }
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ShardedStore::InsertBatch(std::span<const Record> recs) {
  WriteBatch batch;
  for (const Record& rec : recs) batch.Put(rec.key, rec.payload);
  return Write(batch);
}

Status ShardedStore::DeleteBatch(std::span<const PseudoKey> keys) {
  WriteBatch batch;
  for (const PseudoKey& key : keys) batch.Delete(key);
  return Write(batch);
}

Status ShardedStore::Range(const RangePredicate& pred,
                           std::vector<Record>* out, bool* partial) {
  out->clear();
  if (partial != nullptr) *partial = false;
  std::vector<std::vector<Record>> per(units_.size());
  bool data_loss = false;
  int down = 0;
  size_t total = 0;
  for (size_t s = 0; s < units_.size(); ++s) {
    Status st = RunWithRetry(static_cast<int>(s), [&](BmehStore* store) {
      per[s].clear();
      return store->Range(pred, &per[s]);
    });
    if (st.IsUnavailable()) {
      // Keep collecting: the healthy shards' matches are still owed to
      // the caller, and the final status reports the partiality.
      per[s].clear();
      ++down;
      continue;
    }
    if (st.IsDataLoss()) {
      // Same: a degraded shard returns its surviving matches.
      data_loss = true;
    } else if (!st.ok()) {
      return st;
    }
    // A shard returns its matches unordered; sort each by ψ so the
    // cursors below emit it in order.
    std::sort(per[s].begin(), per[s].end(),
              [this](const Record& a, const Record& b) {
                return ShardRouter::PsiLess(a.key, b.key, schema_);
              });
    total += per[s].size();
  }

  // Ordered k-way merge across the shard cursors.  Shards own contiguous
  // ψ ranges (the routing prefix is the most significant digits), so the
  // merge preserves global ψ order across shard boundaries; it stays a
  // real merge rather than a concatenation so the invariant holds even
  // for exotic predicates or future non-prefix routers.
  struct Cursor {
    size_t shard;
    size_t pos;
  };
  auto later = [&](const Cursor& x, const Cursor& y) {
    return ShardRouter::PsiLess(per[y.shard][y.pos].key,
                                per[x.shard][x.pos].key, schema_);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
      later);
  for (size_t s = 0; s < per.size(); ++s) {
    if (!per[s].empty()) heap.push({s, 0});
  }
  out->reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out->push_back(per[c.shard][c.pos]);
    if (++c.pos < per[c.shard].size()) heap.push(c);
  }
  if (down > 0) {
    // Unavailable outranks DataLoss: it is retryable (the shard may come
    // back with all its data), while DataLoss is a verified hole.
    if (partial != nullptr) *partial = true;
    return Status::Unavailable("range result is partial: " +
                               std::to_string(down) +
                               " shard(s) unavailable");
  }
  if (data_loss) {
    if (partial != nullptr) *partial = true;
    return Status::DataLoss(
        "range result is partial: a shard lost data to corruption");
  }
  return Status::OK();
}

Status ShardedStore::Checkpoint() {
  // Every healthy shard is attempted: checkpoints are independent
  // per-shard superblock flips, and one shard's refusal (quota,
  // degradation, unavailability) is no reason to leave its siblings'
  // WALs long.
  Status first;
  for (size_t s = 0; s < units_.size(); ++s) {
    StorageUnit::Ref ref = units_[s]->Acquire();
    Status st = ref ? ref->Checkpoint()
                    : Status::Unavailable("shard " + std::to_string(s) +
                                          " is unavailable");
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

namespace {

constexpr char kShardBackupManifestName[] = "SHARDBACKUP";
constexpr char kShardBackupMagic[] = "BMEH-SHARD-BACKUP v1";

/// Per-shard subdirectory name inside a sharded backup set.
std::string ShardSetSubdir(int shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d", shard_index);
  return name;
}

/// Appends the crc seal to `body` and publishes it as `dir/name` with
/// the temp + fsync + rename + directory-fsync dance.
Status WriteSealedTextFile(const std::string& dir, const std::string& name,
                           std::string body) {
  char seal[32];
  std::snprintf(seal, sizeof(seal), "crc %08x\n",
                Crc32(body.data(), body.size()));
  body += seal;
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot write " + tmp_path);
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish " + final_path + ": " +
                           std::strerror(errno));
  }
  return SyncDirectory(dir);
}

Status EnsureDirExists(const std::string& dir) {
  bool is_dir = false;
  if (PathExists(dir, &is_dir)) {
    if (!is_dir) {
      return Status::Invalid(dir + " exists and is not a directory");
    }
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return Status::IoError("cannot create " + dir + ": " +
                           std::strerror(errno));
  }
  return SyncDirectory(ParentDir(dir));
}

}  // namespace

Result<ShardBackupInfo> ShardedStore::Backup(const std::string& out_dir,
                                             const BackupOptions& options) {
  const int n = shards();
  const bool incremental = !options.base_set.empty();
  ShardBackupSetInfo prev;
  if (incremental) {
    BMEH_ASSIGN_OR_RETURN(prev, ReadBackupManifest(options.base_set));
    if (prev.shards != n) {
      return Status::Invalid("incremental backup: base set has " +
                             std::to_string(prev.shards) +
                             " shards, store has " + std::to_string(n));
    }
  }
  BMEH_RETURN_NOT_OK(EnsureDirExists(out_dir));
  if (PathExists(out_dir + "/" + kShardBackupManifestName, nullptr)) {
    return Status::AlreadyExists(out_dir +
                                 " already holds a sealed sharded backup");
  }

  ShardBackupInfo info;
  info.shards = n;
  info.shard_status.assign(n, Status::OK());
  info.watermark.assign(n, 0);
  std::vector<uint64_t> shard_bytes(n, 0);
  std::vector<int> shard_page_size(n, 0);

  // One thread per shard, like parallel recovery: each backup touches
  // only shard-local state (its pinned chains, its archive subdir, its
  // set subdirectory), so shards never contend.
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (int s = 0; s < n; ++s) {
    workers.emplace_back([&, s] {
      StorageUnit::Ref ref = units_[s]->Acquire();
      if (!ref) {
        const Status why = units_[s]->down_reason();
        info.shard_status[s] = Status::Unavailable(
            "shard " + std::to_string(s) + " is unavailable" +
            (why.ok() ? "" : ": " + why.message()));
        return;
      }
      BackupOptions per;
      per.metrics = options.metrics;
      if (!options.wal_archive_dir.empty()) {
        per.wal_archive_dir =
            StorageUnit::ShardArchiveDir(options.wal_archive_dir, s);
      }
      if (incremental && prev.shard[s].ok) {
        per.base_set = options.base_set + "/" + prev.shard[s].subdir;
      }
      // A shard whose previous backup failed gets a fresh full set
      // (per.base_set stays empty): per-shard chains are independent,
      // so one bad link never spreads.
      shard_page_size[s] = ref->page_store().page_size();
      auto run =
          BackupStore::Run(ref.get(), out_dir + "/" + ShardSetSubdir(s), per);
      if (!run.ok()) {
        info.shard_status[s] = run.status();
        return;
      }
      info.watermark[s] = run.ValueOrDie().watermark;
      shard_bytes[s] = run.ValueOrDie().bytes;
    });
  }
  for (std::thread& t : workers) t.join();

  Status first;
  int page_size = 0;
  for (int s = 0; s < n; ++s) {
    if (!info.shard_status[s].ok()) {
      ++info.failed;
      if (first.ok()) first = info.shard_status[s];
    } else {
      info.bytes += shard_bytes[s];
      if (page_size == 0) page_size = shard_page_size[s];
    }
  }
  // Nothing was captured: refuse rather than seal an empty set.
  if (info.failed == n) return first;

  std::string body = std::string(kShardBackupMagic) + "\n";
  body += "shards " + std::to_string(n) + "\n";
  body += "shard_bits " + std::to_string(shard_bits_) + "\n";
  body += "page_size " + std::to_string(page_size) + "\n";
  body += "dims " + std::to_string(schema_.dims()) + "\n";
  body += "widths";
  for (int j = 0; j < schema_.dims(); ++j) {
    body += " " + std::to_string(schema_.width(j));
  }
  body += "\n";
  for (int s = 0; s < n; ++s) {
    if (info.shard_status[s].ok()) {
      body += "shard " + std::to_string(s) + " ok " +
              std::to_string(info.watermark[s]) + " " + ShardSetSubdir(s) +
              "\n";
    } else {
      std::string why = info.shard_status[s].message();
      std::replace(why.begin(), why.end(), '\n', ' ');
      body += "shard " + std::to_string(s) + " err " + why + "\n";
    }
  }
  BMEH_RETURN_NOT_OK(
      WriteSealedTextFile(out_dir, kShardBackupManifestName, std::move(body)));
  return info;
}

Result<ShardBackupSetInfo> ShardedStore::ReadBackupManifest(
    const std::string& set_dir) {
  const std::string path = set_dir + "/" + kShardBackupManifestName;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[512];
  size_t k;
  while ((k = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, k);
  std::fclose(f);

  const size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::Corruption("backup super-manifest missing its crc seal: " +
                              path);
  }
  uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &want) != 1) {
    return Status::Corruption("backup super-manifest crc seal unreadable: " +
                              path);
  }
  if (Crc32(text.data(), crc_pos) != want) {
    return Status::Corruption("backup super-manifest checksum mismatch: " +
                              path);
  }

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kShardBackupMagic) {
    return Status::Corruption("not a sharded backup set: " + path);
  }
  ShardBackupSetInfo set;
  int dims = 0;
  std::vector<int> widths;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (name == "shards") {
      fields >> set.shards;
    } else if (name == "shard_bits") {
      fields >> set.shard_bits;
    } else if (name == "page_size") {
      fields >> set.page_size;
    } else if (name == "dims") {
      fields >> dims;
    } else if (name == "widths") {
      int w;
      while (fields >> w) widths.push_back(w);
    } else if (name == "shard") {
      int idx = -1;
      std::string state;
      fields >> idx >> state;
      if (idx < 0 || idx >= 4096) {
        return Status::Corruption("backup super-manifest shard index bad: " +
                                  path);
      }
      if (static_cast<size_t>(idx) >= set.shard.size()) {
        set.shard.resize(idx + 1);
      }
      ShardBackupSetInfo::ShardEntry& entry = set.shard[idx];
      if (state == "ok") {
        entry.ok = true;
        fields >> entry.watermark >> entry.subdir;
        if (entry.subdir.empty() ||
            entry.subdir.find('/') != std::string::npos ||
            entry.subdir.find("..") != std::string::npos) {
          return Status::Corruption(
              "backup super-manifest shard subdir bad: " + path);
        }
      } else if (state == "err") {
        entry.ok = false;
        std::getline(fields, entry.error);
        while (!entry.error.empty() && entry.error.front() == ' ') {
          entry.error.erase(entry.error.begin());
        }
      } else {
        return Status::Corruption("backup super-manifest shard state bad: " +
                                  path);
      }
    }
    // Unknown fields are ignored: the crc seals them, and a newer
    // writer may add lines an older reader can skip.
  }
  if (!IsPowerOfTwo(set.shards) || set.shard_bits != Log2Exact(set.shards) ||
      set.page_size <= 0 || dims <= 0 || dims > kMaxDims ||
      static_cast<int>(widths.size()) != dims ||
      static_cast<int>(set.shard.size()) != set.shards) {
    return Status::Corruption("backup super-manifest fields inconsistent: " +
                              path);
  }
  set.schema = KeySchema(std::span<const int>(widths.data(), widths.size()));
  return set;
}

bool ShardedStore::IsShardedBackupDir(const std::string& path) {
  bool is_dir = false;
  if (!PathExists(path, &is_dir) || !is_dir) return false;
  return ReadBackupManifest(path).ok();
}

Result<ShardRestoreInfo> ShardedStore::Restore(const std::string& set_dir,
                                               const std::string& dest_dir,
                                               const RestoreOptions& options) {
  BMEH_ASSIGN_OR_RETURN(ShardBackupSetInfo set, ReadBackupManifest(set_dir));
  // Refuse any non-empty destination — a live store, or the debris of a
  // restore that was killed midway.  Restoring over leftovers must be an
  // explicit operator decision (remove the directory first), never a
  // silent merge.
  bool dest_is_dir = false;
  if (PathExists(dest_dir, &dest_is_dir)) {
    if (!dest_is_dir) {
      return Status::Invalid(dest_dir + " exists and is not a directory");
    }
    if (!DirectoryIsEmpty(dest_dir)) {
      return Status::AlreadyExists(dest_dir +
                                   " is not empty; remove it before restoring");
    }
  } else {
    if (::mkdir(dest_dir.c_str(), 0755) != 0) {
      return Status::IoError("cannot create " + dest_dir + ": " +
                             std::strerror(errno));
    }
    BMEH_RETURN_NOT_OK(SyncDirectory(ParentDir(dest_dir)));
  }

  ShardRestoreInfo info;
  info.shards = set.shards;
  info.shard_status.assign(set.shards, Status::OK());
  info.replay_lsn.assign(set.shards, 0);
  std::vector<std::thread> workers;
  workers.reserve(set.shards);
  // A shard that cannot be restored — absent from the set, or its sub-set
  // refused — must not leave a bare hole: a later open would create a
  // fresh *empty* shard there and silently answer KeyError for records
  // that existed.  A tombstone file that cannot parse as a store makes a
  // kPartial open bring the shard up *down* (Unavailable), which is the
  // honest answer until the operator repairs or re-restores it.
  const auto entomb = [&dest_dir](int s, const std::string& why) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%04d.bmeh", s);
    (void)WriteSealedTextFile(dest_dir, name,
                              "BMEH-RESTORE-TOMBSTONE v1\n" + why + "\n");
  };
  for (int s = 0; s < set.shards; ++s) {
    workers.emplace_back([&, s] {
      const ShardBackupSetInfo::ShardEntry& entry = set.shard[s];
      if (!entry.ok) {
        // Recorded-failed shard: skip it so the rest of the store still
        // comes back.
        const std::string why =
            "shard " + std::to_string(s) + " absent from backup set" +
            (entry.error.empty() ? "" : " (" + entry.error + ")");
        entomb(s, why);
        info.shard_status[s] = Status::Unavailable(why);
        return;
      }
      RestoreOptions per = options;
      per.store.schema = set.schema;
      if (options.to_lsn != 0) {
        // LSN domains are independent per shard: a global target is the
        // per-shard clamp to that shard's own watermark.
        per.to_lsn = std::min(options.to_lsn, entry.watermark);
      }
      auto run = RestoreStore::Run(set_dir + "/" + entry.subdir,
                                   ShardPath(dest_dir, s), per);
      if (!run.ok()) {
        // The per-shard restore refused (corrupt/gapped sub-set) and
        // removed its temp; entomb the slot so the failure stays loud.
        entomb(s, run.status().message());
        info.shard_status[s] = run.status();
        return;
      }
      info.replay_lsn[s] = run.ValueOrDie().replay_lsn;
    });
  }
  for (std::thread& t : workers) t.join();

  Status first;
  for (int s = 0; s < set.shards; ++s) {
    if (!info.shard_status[s].ok()) {
      ++info.failed;
      if (first.ok()) first = info.shard_status[s];
    }
  }
  // No shard restored at all: nothing useful was produced — report the
  // failure outright and publish no manifest.
  if (info.failed == set.shards) return first;
  // The store manifest is the commit point: it lands only after every
  // shard worker has finished, so a restore killed midway leaves a
  // directory with no MANIFEST — which an adopting Open refuses — rather
  // than a valid-looking store whose missing shards would come up as
  // fresh empty trees, silently answering KeyError for records that
  // existed at backup time.
  ShardManifest m;
  m.shards = set.shards;
  m.shard_bits = set.shard_bits;
  m.page_size = set.page_size;
  m.schema = set.schema;
  BMEH_RETURN_NOT_OK(WriteManifest(dest_dir, m));
  return info;
}

Status ShardedStore::RepairShard(int i, ShardRepairReport* report) {
  if (i < 0 || i >= shards()) {
    return Status::Invalid("shard index out of range: " + std::to_string(i));
  }
  obs::TraceSpan span(tracer_, "shard_repair", "store");
  // A repair is a bounded foreground activity: register a transient
  // heartbeat for its duration so a repair stuck inside scrub/salvage is
  // raised as a stall instead of hanging the operator silently.
  obs::Watchdog::Heartbeat* hb =
      watchdog_ != nullptr
          ? watchdog_->Register("shard" + std::to_string(i) + "_repair",
                                watchdog_deadline_ms_)
          : nullptr;
  const uint64_t start_ns = obs::MonotonicNanos();
  Status st;
  {
    obs::Watchdog::ArmedScope armed(hb);
    st = units_[i]->Repair(report);
  }
  if (hb != nullptr) watchdog_->Unregister(hb);
  if (st.ok() && repairs_total_ != nullptr) repairs_total_->Inc();
  if (oplog_ != nullptr) {
    obs::WideEvent ev;
    ev.trace_id = obs::NextTraceId();
    ev.op = "shard_repair";
    ev.shard = i;
    ev.status = StatusCodeName(st.code());
    ev.latency_ns = obs::MonotonicNanos() - start_ns;
    oplog_->RecordAlways(ev);
  }
  return st;
}

int ShardedStore::TryReopenDownShards() {
  int reopened = 0;
  for (const auto& u : units_) {
    if (u->healthy()) continue;
    if (u->TryReopen().ok()) ++reopened;
  }
  return reopened;
}

Status ShardedStore::BringDownShard(int i) {
  if (i < 0 || i >= shards()) {
    return Status::Invalid("shard index out of range: " + std::to_string(i));
  }
  units_[i]->BringDown(
      Status::Unavailable("shard " + std::to_string(i) + " brought down"));
  if (oplog_ != nullptr) {
    obs::WideEvent ev;
    ev.trace_id = obs::NextTraceId();
    ev.op = "shard_down";
    ev.shard = i;
    ev.status = "Unavailable";
    ev.detail = "shard brought down (operator / chaos)";
    oplog_->RecordAlways(ev);
  }
  return Status::OK();
}

int ShardedStore::down_shards() const {
  int n = 0;
  for (const auto& u : units_) {
    if (!u->healthy()) ++n;
  }
  return n;
}

uint64_t ShardedStore::records() const {
  uint64_t n = 0;
  for (const auto& u : units_) {
    StorageUnit::Ref ref = u->Acquire();
    if (ref) n += ref->tree().Stats().records;
  }
  return n;
}

uint64_t ShardedStore::wal_records() const {
  uint64_t n = 0;
  for (const auto& u : units_) {
    StorageUnit::Ref ref = u->Acquire();
    if (ref) n += ref->wal_records();
  }
  return n;
}

uint64_t ShardedStore::dirty_ops() const {
  uint64_t n = 0;
  for (const auto& u : units_) {
    StorageUnit::Ref ref = u->Acquire();
    if (ref) n += ref->dirty_ops();
  }
  return n;
}

bool ShardedStore::degraded() const {
  for (const auto& u : units_) {
    StorageUnit::Ref ref = u->Acquire();
    if (!ref || ref->degraded()) return true;
  }
  return false;
}

void ShardedStore::SimulateCrashForTesting() {
  for (const auto& u : units_) {
    if (u->store() != nullptr) u->store()->SimulateCrashForTesting();
  }
}

void ShardedStore::SimulateProcessCrashForTesting() {
  for (const auto& u : units_) {
    if (u->store() == nullptr) continue;
    u->store()->SimulateCrashForTesting();
    if (auto* file =
            dynamic_cast<FilePageStore*>(u->store()->mutable_page_store())) {
      file->CrashForTesting();
    }
  }
}

void ShardedStore::DisableFsyncForTesting() {
  for (const auto& u : units_) {
    if (u->store() == nullptr) continue;
    if (auto* file =
            dynamic_cast<FilePageStore*>(u->store()->mutable_page_store())) {
      file->DisableFsyncForTesting();
    }
  }
}

}  // namespace bmeh
