#include "src/store/sharded_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <queue>
#include <sstream>
#include <thread>

#include "src/common/crc32.h"

namespace bmeh {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "BMEH-SHARD v1";

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int Log2Exact(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

bool PathExists(const std::string& path, bool* is_dir) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  if (is_dir != nullptr) *is_dir = S_ISDIR(st.st_mode);
  return true;
}

Status ValidateShardCount(int shards, const KeySchema& schema) {
  if (!IsPowerOfTwo(shards) || shards > 4096) {
    return Status::Invalid("shard count must be a power of two in [1, 4096], "
                           "got " + std::to_string(shards));
  }
  if (Log2Exact(shards) > schema.total_bits()) {
    return Status::Invalid("shard count " + std::to_string(shards) +
                           " needs more routing bits than the schema has (" +
                           std::to_string(schema.total_bits()) + ")");
  }
  return Status::OK();
}

}  // namespace

int ShardRouter::ShardOf(const PseudoKey& key, const KeySchema& schema,
                         int shard_bits) {
  if (shard_bits <= 0) return 0;
  const int d = schema.dims();
  int out = 0;
  int got = 0;
  // Walk the interleaved ψ digit string (dimension round-robin, MSB
  // first) until the routing prefix is assembled; a dimension whose
  // width is exhausted contributes no digit in that round.
  for (int t = 0; got < shard_bits && t < d * 32; ++t) {
    const int j = t % d;
    const int i = t / d;
    const int w = schema.width(j);
    if (i >= w) continue;
    out = (out << 1) |
          static_cast<int>((key.component(j) >> (w - 1 - i)) & 1u);
    ++got;
  }
  return out;
}

bool ShardRouter::PsiLess(const PseudoKey& a, const PseudoKey& b,
                          const KeySchema& schema) {
  const int d = schema.dims();
  int max_w = 0;
  for (int j = 0; j < d; ++j) max_w = std::max(max_w, schema.width(j));
  for (int t = 0; t < d * max_w; ++t) {
    const int j = t % d;
    const int i = t / d;
    const int w = schema.width(j);
    if (i >= w) continue;
    const uint32_t ba = (a.component(j) >> (w - 1 - i)) & 1u;
    const uint32_t bb = (b.component(j) >> (w - 1 - i)) & 1u;
    if (ba != bb) return ba < bb;
  }
  return false;
}

std::string ShardedStore::ShardPath(const std::string& dir, int shard_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d.bmeh", shard_index);
  return dir + "/" + name;
}

Status ShardedStore::WriteManifest(const std::string& dir,
                                   const ShardManifest& manifest) {
  bool is_dir = false;
  if (!PathExists(dir, &is_dir)) {
    if (::mkdir(dir.c_str(), 0755) != 0) {
      return Status::IoError("cannot create " + dir + ": " +
                             std::strerror(errno));
    }
  } else if (!is_dir) {
    return Status::Invalid(dir + " exists and is not a directory");
  }
  std::string body = std::string(kManifestMagic) + "\n";
  body += "shards " + std::to_string(manifest.shards) + "\n";
  body += "shard_bits " + std::to_string(manifest.shard_bits) + "\n";
  body += "page_size " + std::to_string(manifest.page_size) + "\n";
  body += "dims " + std::to_string(manifest.schema.dims()) + "\n";
  body += "widths";
  for (int j = 0; j < manifest.schema.dims(); ++j) {
    body += " " + std::to_string(manifest.schema.width(j));
  }
  body += "\n";
  char seal[32];
  std::snprintf(seal, sizeof(seal), "crc %08x\n",
                Crc32(body.data(), body.size()));
  body += seal;

  // Write-temp-then-rename so a crash never leaves a half-written
  // manifest where Open() would read it.
  const std::string final_path = dir + "/" + kManifestName;
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot write " + tmp_path);
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) ==
                     body.size();
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write to " + tmp_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot publish " + final_path + ": " +
                           std::strerror(errno));
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<ShardManifest> ShardedStore::ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::string text;
  char buf[512];
  size_t k;
  while ((k = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, k);
  std::fclose(f);

  const size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::Corruption("manifest missing its crc seal: " + path);
  }
  uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &want) != 1) {
    return Status::Corruption("manifest crc seal unreadable: " + path);
  }
  if (Crc32(text.data(), crc_pos) != want) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::Corruption("not a sharded store manifest: " + path);
  }
  ShardManifest m;
  int dims = 0;
  std::vector<int> widths;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    if (name == "shards") {
      fields >> m.shards;
    } else if (name == "shard_bits") {
      fields >> m.shard_bits;
    } else if (name == "page_size") {
      fields >> m.page_size;
    } else if (name == "dims") {
      fields >> dims;
    } else if (name == "widths") {
      int w;
      while (fields >> w) widths.push_back(w);
    }
    // Unknown fields are ignored: the crc seals them, and a newer writer
    // may add informational lines an older reader can skip.
  }
  if (!IsPowerOfTwo(m.shards) || m.shard_bits != Log2Exact(m.shards) ||
      m.page_size <= 0 || dims <= 0 || dims > kMaxDims ||
      static_cast<int>(widths.size()) != dims) {
    return Status::Corruption("manifest fields inconsistent: " + path);
  }
  m.schema = KeySchema(std::span<const int>(widths.data(), widths.size()));
  return m;
}

bool ShardedStore::IsShardedDir(const std::string& path) {
  bool is_dir = false;
  if (!PathExists(path, &is_dir) || !is_dir) return false;
  return ReadManifest(path).ok();
}

ShardedStore::ShardedStore(std::vector<std::unique_ptr<StorageUnit>> units,
                           int shard_bits, const KeySchema& schema,
                           obs::MetricsRegistry* metrics)
    : units_(std::move(units)), shard_bits_(shard_bits), schema_(schema) {
  if (metrics == nullptr) return;
  metrics_ = metrics;
  // Aggregate sampled state under the unlabeled names a single store
  // publishes, so dashboards (and the CLI greps) keep working against a
  // sharded store; the per-shard breakdown is what the units publish
  // under their "shard<k>_" labels.
  metrics_source_ = metrics_->AddSource([this](obs::RegistrySnapshot* s) {
    uint64_t records = 0, wal = 0, dirty = 0;
    int64_t height = 0;
    for (const auto& u : units_) {
      const BmehStore::SampledState st = u->store()->SampleStateForMetrics();
      records += st.records;
      wal += st.wal_records;
      dirty += st.dirty_ops;
      height = std::max<int64_t>(height, st.height);
    }
    s->gauges["store_shards"] = static_cast<int64_t>(units_.size());
    s->gauges["tree_records"] = static_cast<int64_t>(records);
    s->gauges["tree_height"] = height;
    s->gauges["wal_records"] = static_cast<int64_t>(wal);
    s->gauges["store_dirty_ops"] = static_cast<int64_t>(dirty);
  });
}

ShardedStore::~ShardedStore() {
  // The source samples the units; detach it before they die.  The units
  // then close one by one, each folding its WAL into a final per-shard
  // checkpoint exactly as a standalone store would.
  if (metrics_ != nullptr) metrics_->RemoveSource(metrics_source_);
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::OpenUnits(
    const std::string& dir, int shards, const ShardedStoreOptions& options) {
  const int n = shards;
  std::vector<std::unique_ptr<StorageUnit>> units(n);
  std::vector<Status> statuses(n, Status::OK());
  auto open_one = [&](int i) {
    auto r = StorageUnit::Open(i, ShardPath(dir, i), options.store);
    if (r.ok()) {
      units[i] = std::move(r).ValueOrDie();
    } else {
      statuses[i] = r.status();
    }
  };
  if (n == 1) {
    open_one(0);
  } else {
    // Parallel recovery: every shard replays its own WAL (and rebuilds
    // its own free list) on its own thread.  The units share nothing but
    // the mutex-guarded metrics registry, so concurrent opens are safe.
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (int i = 0; i < n; ++i) workers.emplace_back(open_one, i);
    for (auto& w : workers) w.join();
  }
  for (int i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      // A failed open must not mutate shard files: poison the units that
      // did open so their destructors skip the close-time checkpoint.
      for (auto& u : units) {
        if (u != nullptr) u->store()->SimulateCrashForTesting();
      }
      return Status(statuses[i].code(),
                    "shard " + std::to_string(i) + ": " +
                        statuses[i].message());
    }
  }
  return std::unique_ptr<ShardedStore>(
      new ShardedStore(std::move(units), Log2Exact(n), options.store.schema,
                       options.store.metrics));
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& dir, const ShardedStoreOptions& options) {
  bool is_dir = false;
  const bool exists = PathExists(dir, &is_dir);
  if (exists && !is_dir) {
    return Status::Invalid(dir + " is not a sharded store directory");
  }
  ShardManifest manifest;
  const bool have_manifest = exists && PathExists(dir + "/" + kManifestName,
                                                  nullptr);
  if (!have_manifest) {
    // Fresh store: fix the routing contract and seal it in the manifest
    // before any shard file exists.
    manifest.shards = options.shards == 0 ? 1 : options.shards;
    BMEH_RETURN_NOT_OK(
        ValidateShardCount(manifest.shards, options.store.schema));
    manifest.shard_bits = Log2Exact(manifest.shards);
    manifest.page_size = options.store.page_size;
    manifest.schema = options.store.schema;
    BMEH_RETURN_NOT_OK(WriteManifest(dir, manifest));
  } else {
    BMEH_ASSIGN_OR_RETURN(manifest, ReadManifest(dir));
    if (options.shards != 0 && options.shards != manifest.shards) {
      return Status::Invalid(
          "shard count mismatch: directory has " +
          std::to_string(manifest.shards) + " shards, caller expects " +
          std::to_string(options.shards));
    }
    if (!(manifest.schema == options.store.schema)) {
      return Status::Invalid("schema mismatch: sharded store has " +
                             manifest.schema.ToString() + ", caller expects " +
                             options.store.schema.ToString());
    }
  }
  ShardedStoreOptions fixed = options;
  fixed.store.page_size = manifest.page_size;
  return OpenUnits(dir, manifest.shards, fixed);
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    std::vector<std::unique_ptr<PageStore>> devices,
    const ShardedStoreOptions& options) {
  const int n = static_cast<int>(devices.size());
  BMEH_RETURN_NOT_OK(ValidateShardCount(n, options.store.schema));
  if (options.shards != 0 && options.shards != n) {
    return Status::Invalid("options.shards disagrees with the device count");
  }
  std::vector<std::unique_ptr<StorageUnit>> units(n);
  for (int i = 0; i < n; ++i) {
    auto r = StorageUnit::Open(i, std::move(devices[i]), options.store);
    if (!r.ok()) {
      for (auto& u : units) {
        if (u != nullptr) u->store()->SimulateCrashForTesting();
      }
      return Status(r.status().code(), "shard " + std::to_string(i) + ": " +
                                           r.status().message());
    }
    units[i] = std::move(r).ValueOrDie();
  }
  return std::unique_ptr<ShardedStore>(
      new ShardedStore(std::move(units), Log2Exact(n), options.store.schema,
                       options.store.metrics));
}

Result<ShardedStoreInfo> ShardedStore::Inspect(const std::string& dir) {
  BMEH_ASSIGN_OR_RETURN(const ShardManifest manifest, ReadManifest(dir));
  ShardedStoreInfo info;
  info.shards = manifest.shards;
  info.shard_bits = manifest.shard_bits;
  info.page_size = manifest.page_size;
  info.shard.reserve(manifest.shards);
  for (int i = 0; i < manifest.shards; ++i) {
    auto r = BmehStore::Inspect(ShardPath(dir, i));
    if (!r.ok()) {
      return Status(r.status().code(), "shard " + std::to_string(i) + ": " +
                                           r.status().message());
    }
    info.records += r->records;
    info.wal_records += r->wal_records;
    info.page_count += r->page_count;
    info.shard.push_back(*r);
  }
  return info;
}

Status ShardedStore::Put(const PseudoKey& key, uint64_t payload) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  return units_[ShardOf(key)]->store()->Put(key, payload);
}

Result<uint64_t> ShardedStore::Get(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  return units_[ShardOf(key)]->store()->Get(key);
}

Status ShardedStore::Delete(const PseudoKey& key) {
  BMEH_RETURN_NOT_OK(schema_.Validate(key));
  return units_[ShardOf(key)]->store()->Delete(key);
}

Status ShardedStore::Write(const WriteBatch& batch,
                           std::vector<Status>* per_record) {
  const std::vector<Wal::LogRecord>& recs = batch.records();
  std::vector<Status> local;
  std::vector<Status>& statuses = per_record != nullptr ? *per_record : local;
  statuses.assign(recs.size(), Status::OK());
  if (recs.empty()) return Status::OK();

  // Validate every key before anything is routed: a malformed key fails
  // the whole batch with nothing written on any shard — the same
  // up-front contract as the single-store batch path.
  for (const Wal::LogRecord& rec : recs) {
    const Status st = schema_.Validate(rec.key);
    if (!st.ok()) {
      statuses.assign(recs.size(), st);
      return st;
    }
  }

  // Split into per-shard sub-batches, preserving the caller's relative
  // order within each shard (a duplicate key always lands on one shard,
  // so per-shard order is all that per-record outcomes depend on).
  std::vector<WriteBatch> sub(units_.size());
  std::vector<std::vector<size_t>> origin(units_.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const int s = ShardOf(recs[i].key);
    if (recs[i].op == Wal::kOpInsert) {
      sub[s].Put(recs[i].key, recs[i].payload);
    } else {
      sub[s].Delete(recs[i].key);
    }
    origin[s].push_back(i);
  }

  // Each sub-batch commits independently with single-store atomicity
  // (one WAL chain, one fsync, all-or-nothing on crash).  There is no
  // cross-shard transaction: a shard that refuses its sub-batch leaves
  // sibling commits standing, and the per-record statuses say which.
  std::vector<Status> sub_statuses;
  for (size_t s = 0; s < units_.size(); ++s) {
    if (sub[s].empty()) continue;
    units_[s]->store()->Write(sub[s], &sub_statuses);
    for (size_t k = 0; k < sub_statuses.size(); ++k) {
      statuses[origin[s][k]] = sub_statuses[k];
    }
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ShardedStore::InsertBatch(std::span<const Record> recs) {
  WriteBatch batch;
  for (const Record& rec : recs) batch.Put(rec.key, rec.payload);
  return Write(batch);
}

Status ShardedStore::DeleteBatch(std::span<const PseudoKey> keys) {
  WriteBatch batch;
  for (const PseudoKey& key : keys) batch.Delete(key);
  return Write(batch);
}

Status ShardedStore::Range(const RangePredicate& pred,
                           std::vector<Record>* out) {
  out->clear();
  std::vector<std::vector<Record>> per(units_.size());
  bool data_loss = false;
  size_t total = 0;
  for (size_t s = 0; s < units_.size(); ++s) {
    Status st = units_[s]->store()->Range(pred, &per[s]);
    if (st.IsDataLoss()) {
      // Keep collecting: the surviving shards' matches are still owed to
      // the caller, and the final status reports the partiality.
      data_loss = true;
    } else if (!st.ok()) {
      return st;
    }
    // A shard returns its matches unordered; sort each by ψ so the
    // cursors below emit it in order.
    std::sort(per[s].begin(), per[s].end(),
              [this](const Record& a, const Record& b) {
                return ShardRouter::PsiLess(a.key, b.key, schema_);
              });
    total += per[s].size();
  }

  // Ordered k-way merge across the shard cursors.  Shards own contiguous
  // ψ ranges (the routing prefix is the most significant digits), so the
  // merge preserves global ψ order across shard boundaries; it stays a
  // real merge rather than a concatenation so the invariant holds even
  // for exotic predicates or future non-prefix routers.
  struct Cursor {
    size_t shard;
    size_t pos;
  };
  auto later = [&](const Cursor& x, const Cursor& y) {
    return ShardRouter::PsiLess(per[y.shard][y.pos].key,
                                per[x.shard][x.pos].key, schema_);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
      later);
  for (size_t s = 0; s < per.size(); ++s) {
    if (!per[s].empty()) heap.push({s, 0});
  }
  out->reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out->push_back(per[c.shard][c.pos]);
    if (++c.pos < per[c.shard].size()) heap.push(c);
  }
  if (data_loss) {
    return Status::DataLoss(
        "range result is partial: a shard lost data to corruption");
  }
  return Status::OK();
}

Status ShardedStore::Checkpoint() {
  // Every shard is attempted: checkpoints are independent per-shard
  // superblock flips, and one shard's refusal (quota, degradation) is no
  // reason to leave its siblings' WALs long.
  Status first;
  for (const auto& u : units_) {
    Status st = u->store()->Checkpoint();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

uint64_t ShardedStore::records() const {
  uint64_t n = 0;
  for (const auto& u : units_) n += u->store()->tree().Stats().records;
  return n;
}

uint64_t ShardedStore::wal_records() const {
  uint64_t n = 0;
  for (const auto& u : units_) n += u->store()->wal_records();
  return n;
}

uint64_t ShardedStore::dirty_ops() const {
  uint64_t n = 0;
  for (const auto& u : units_) n += u->store()->dirty_ops();
  return n;
}

bool ShardedStore::degraded() const {
  for (const auto& u : units_) {
    if (u->store()->degraded()) return true;
  }
  return false;
}

void ShardedStore::SimulateCrashForTesting() {
  for (const auto& u : units_) u->store()->SimulateCrashForTesting();
}

void ShardedStore::SimulateProcessCrashForTesting() {
  for (const auto& u : units_) {
    u->store()->SimulateCrashForTesting();
    if (auto* file =
            dynamic_cast<FilePageStore*>(u->store()->mutable_page_store())) {
      file->CrashForTesting();
    }
  }
}

void ShardedStore::DisableFsyncForTesting() {
  for (const auto& u : units_) {
    if (auto* file =
            dynamic_cast<FilePageStore*>(u->store()->mutable_page_store())) {
      file->DisableFsyncForTesting();
    }
  }
}

}  // namespace bmeh
